"""Class descriptors: source shipping, per-namespace cloning, static fields."""

import pytest

from repro.errors import ClassTransferError
from repro.rmi.classdesc import describe_class, is_mobile_instance, load_class
from repro.bench.workloads import Counter


class WithStatics:
    """Test class carrying class-level ("static") state."""

    population = 0

    def __init__(self):
        WithStatics.population += 1

    def census(self):
        return type(self).population


class WithHelpers:
    """Class whose methods reference module-level names (the import below)."""

    def describe(self):
        return describe_class(Counter).class_name  # resolves via module globals


class TestDescribe:
    def test_captures_name_and_source(self):
        desc = describe_class(Counter)
        assert desc.class_name == "Counter"
        assert "def increment" in desc.source
        assert desc.module == Counter.__module__

    def test_hash_is_stable(self):
        assert describe_class(Counter).source_hash == describe_class(Counter).source_hash

    def test_different_classes_different_hashes(self):
        assert (
            describe_class(Counter).source_hash
            != describe_class(WithStatics).source_hash
        )

    def test_builtin_classes_are_not_mobile(self):
        with pytest.raises(ClassTransferError):
            describe_class(dict)

    def test_non_class_rejected(self):
        with pytest.raises(ClassTransferError):
            describe_class(42)


class TestLoad:
    def test_clone_behaves_like_original(self):
        clone = load_class(describe_class(Counter), "ns1")
        counter = clone(10)
        assert counter.increment() == 11

    def test_clone_is_a_distinct_class(self):
        clone = load_class(describe_class(Counter), "ns1")
        assert clone is not Counter
        assert clone.__name__ == "Counter"

    def test_clone_module_is_synthetic(self):
        clone = load_class(describe_class(Counter), "ns1")
        assert clone.__module__.startswith("repro._mobile.ns1.")

    def test_clone_instances_are_mobile(self):
        clone = load_class(describe_class(Counter), "ns1")
        assert is_mobile_instance(clone(0))
        assert not is_mobile_instance(Counter(0))

    def test_static_fields_are_per_clone(self):
        """The §4.2 limitation: no coherency for class-level state."""
        desc = describe_class(WithStatics)
        clone_a = load_class(desc, "nsA")
        clone_b = load_class(desc, "nsB")
        clone_a()
        clone_a()
        clone_b()
        assert clone_a.population == 2
        assert clone_b.population == 1
        assert WithStatics.population == 0  # original untouched

    def test_module_globals_resolve(self):
        clone = load_class(describe_class(WithHelpers), "ns1")
        assert clone().describe() == "Counter"

    def test_bad_source_raises(self):
        from repro.rmi.classdesc import ClassDescriptor

        desc = ClassDescriptor(
            class_name="Broken",
            module=Counter.__module__,
            source="class Broken(:\n    pass\n",
            source_hash="x" * 64,
        )
        with pytest.raises(ClassTransferError):
            load_class(desc, "ns1")

    def test_source_not_defining_the_class_raises(self):
        from repro.rmi.classdesc import ClassDescriptor

        desc = ClassDescriptor(
            class_name="Missing",
            module=Counter.__module__,
            source="class SomethingElse:\n    pass\n",
            source_hash="y" * 64,
        )
        with pytest.raises(ClassTransferError):
            load_class(desc, "ns1")

    def test_unknown_module_resolves_against_builtins_only(self):
        """Cross-process mobility: the defining module may not exist in
        the receiving process (another machine's test file, a script run
        as ``__main__``).  A dependency-free class still loads — its
        source resolves against builtins — while one with symbolic
        references to the missing module fails with a named error."""
        from repro.rmi.classdesc import ClassDescriptor

        clean = ClassDescriptor(
            class_name="X",
            module="no.such.module",
            source="class X:\n    def double(self, n):\n        return n * 2\n",
            source_hash="z" * 64,
        )
        clone = load_class(clean, "ns1")
        assert clone().double(21) == 42

        needy = ClassDescriptor(
            class_name="Y",
            module="no.such.module",
            source="class Y(SomeMissingBase):\n    pass\n",
            source_hash="w" * 64,
        )
        with pytest.raises(ClassTransferError):
            load_class(needy, "ns1")

    def test_descriptor_validates_class_name(self):
        from repro.rmi.classdesc import ClassDescriptor

        with pytest.raises(ClassTransferError):
            ClassDescriptor(
                class_name="not an identifier",
                module="m",
                source="",
                source_hash="h",
            )
