"""Same-host fast paths: the in-process bypass and the location cache.

The heart of this file is the parametrized semantic-equivalence suite:
every test in :class:`TestInvokeSemantics` runs the same invoke matrix
through the classic wire path (``local_bypass=False`` — loopback TCP to
this node's own listener, the pre-bypass behaviour) and through the
tier-1 bypass, asserting *identical observable outcomes* — by-value
argument/result isolation, failure envelopes, deadline admission and
propagation, cancellation.  A fixture postcondition then proves each leg
actually took the path it claims to cover.
"""

import time
from types import SimpleNamespace

import pytest

from repro.errors import (
    CallTimeoutError,
    NoSuchObjectError,
    RemoteInvocationError,
)
from repro.net.deadline import Deadline, current_deadline
from repro.net.message import MessageKind, build_message
from repro.net.tcpnet import TcpNetwork
from repro.rmi.bypass import _LocalInvoke
from repro.rmi.stub import RemoteRef
from repro.runtime.namespace import Namespace


class MatrixServant:
    """One servant exercising every cell of the invoke matrix."""

    def __init__(self):
        self.calls = 0
        self.retained = None

    def ping(self):
        self.calls += 1
        return "pong"

    def add(self, a, b=0):
        return a + b

    def mutate(self, items):
        # A servant-side argument mutation must never leak back to the
        # caller's object — arguments cross the boundary by value.
        items.append("servant-side")
        return len(items)

    def retain(self, items):
        self.retained = items
        return True

    def get_retained(self):
        return self.retained

    def boom(self):
        raise ValueError("kaboom")

    def deadline_remaining(self):
        deadline = current_deadline()
        return None if deadline is None else deadline.remaining_s()

    def slow(self, seconds):
        time.sleep(seconds)
        return "done"


@pytest.fixture(params=["wire", "bypass"])
def path(request):
    """One namespace on real TCP, with the bypass off ("wire") or on."""
    net = TcpNetwork(local_bypass=(request.param == "bypass"))
    ns = Namespace("n1", net)
    servant = MatrixServant()
    ns.register("subject", servant)
    leg = SimpleNamespace(
        kind=request.param, net=net, ns=ns, servant=servant,
        stub=ns.stub("subject"),
        ref=RemoteRef(node_id="n1", name="subject"),
    )
    yield leg
    # Postcondition: each leg provably takes the path it claims to test.
    before = ns.client.local_hits
    assert leg.stub.add(20, b=2) == 22
    after = ns.client.local_hits
    if request.param == "bypass":
        assert after == before + 1, "bypass leg skipped the in-process path"
    else:
        assert after == before == 0, "wire leg leaked onto the bypass"
    net.shutdown()


class TestInvokeSemantics:
    """The invoke matrix, identical through wire and bypass."""

    def test_plain_result(self, path):
        assert path.stub.add(2, b=3) == 5
        assert path.stub.ping() == "pong"

    def test_argument_mutation_never_leaks_back(self, path):
        items = ["caller-side"]
        assert path.stub.mutate(items) == 2
        assert items == ["caller-side"]

    def test_caller_mutation_never_reaches_a_retaining_servant(self, path):
        items = [1, 2]
        assert path.stub.retain(items) is True
        items.append(3)
        # Direct in-process read: the servant's copy is isolated.
        assert path.servant.retained == [1, 2]

    def test_result_mutation_never_reaches_the_servant(self, path):
        path.stub.retain([1, 2])
        result = path.stub.get_retained()
        assert result == [1, 2]
        result.append(99)
        assert path.servant.retained == [1, 2]

    def test_servant_exception_envelope(self, path):
        with pytest.raises(RemoteInvocationError) as exc_info:
            path.stub.boom()
        error = exc_info.value
        assert "ValueError: kaboom" in str(error)
        assert "kaboom" in error.remote_traceback
        # The delivered error is reconstructed by value: no live cause
        # chain smuggles servant frames across the boundary.
        assert error.__cause__ is None

    def test_missing_object(self, path):
        ghost = path.ns.stub("ghost", location="n1")
        with pytest.raises(NoSuchObjectError):
            ghost.ping()

    def test_private_method_refused(self, path):
        with pytest.raises(NoSuchObjectError, match="private methods"):
            path.ns.client.invoke(path.ref, "_secret", (), {})

    def test_unknown_method(self, path):
        with pytest.raises(NoSuchObjectError):
            path.ns.client.invoke(path.ref, "no_such_method", (), {})

    def test_deadline_propagates_to_servant(self, path):
        remaining = path.ns.client.invoke(
            path.ref, "deadline_remaining", (), {}, Deadline.after_s(30.0)
        )
        assert remaining is not None
        assert 0.0 < remaining <= 30.0

    def test_no_deadline_means_none_ambient(self, path):
        assert path.stub.deadline_remaining() is None

    def test_expired_deadline_dropped_at_admission(self, path):
        deadline = Deadline.after_ms(1.0)
        time.sleep(0.01)
        with pytest.raises(CallTimeoutError):
            path.ns.client.invoke(path.ref, "ping", (), {}, deadline)
        # Admission control, not a server-side timeout: the servant ran 0 times.
        assert path.servant.calls == 0

    def test_cancel_after_completion_is_a_noop(self, path):
        future = path.stub.futures.ping()
        assert future.result(timeout_s=5.0) == "pong"
        assert future.cancel() is False
        assert future.result(timeout_s=5.0) == "pong"

    def test_async_view_matches_blocking(self, path):
        futures = [path.stub.futures.add(i, b=10) for i in range(8)]
        assert [f.result(timeout_s=5.0) for f in futures] == [
            i + 10 for i in range(8)
        ]


class TestBypassReplay:
    """At-most-once across replayed message ids (wire parity is covered
    by the reply-cache suites in tests/net/test_transport.py)."""

    @pytest.fixture
    def ns(self):
        net = TcpNetwork()
        namespace = Namespace("n1", net)
        yield namespace
        net.shutdown()

    def _message(self, call):
        return build_message(MessageKind.INVOKE, "n1", "n1", call)

    def test_replay_served_from_cache_without_reexecution(self, ns):
        servant = MatrixServant()
        ns.register("subject", servant)
        dispatch = ns.client._local
        message = self._message(_LocalInvoke("subject", "ping", (), {}))
        first = dispatch.invoke_message(message)
        again = dispatch.invoke_message(message)
        assert first.result() == "pong"
        assert again.result() == "pong"
        assert servant.calls == 1

    def test_replayed_mutable_result_is_a_fresh_copy(self, ns):
        servant = MatrixServant()
        servant.retained = [1, 2]
        ns.register("subject", servant)
        dispatch = ns.client._local
        message = self._message(
            _LocalInvoke("subject", "get_retained", (), {})
        )
        first = dispatch.invoke_message(message).result()
        again = dispatch.invoke_message(message).result()
        assert first == again == [1, 2]
        # Each delivery unmarshals its own copy, exactly as each wire
        # retransmission decodes the cached reply blob anew.
        assert first is not again
        first.append(99)
        assert again == [1, 2]

    def test_bypass_records_local_trace_events(self, ns):
        ns.register("subject", MatrixServant())
        ns.stub("subject").ping()
        local = [e for e in ns.transport.trace.events()
                 if e.src == "n1" and e.dst == "n1"]
        kinds = [e.kind for e in local]
        assert "INVOKE" in kinds
        assert any(k.startswith("REPLY") for k in kinds)


class TestLocalityLadder:
    """Tier selection and the tier-3 location cache."""

    @pytest.fixture
    def cluster(self):
        net = TcpNetwork()
        a = Namespace("n1", net)
        b = Namespace("n2", net)
        yield SimpleNamespace(net=net, a=a, b=b)
        net.shutdown()

    def test_bypass_falls_back_to_wire_after_migration(self, cluster):
        cluster.a.register("mover", MatrixServant())
        stub = cluster.a.stub("mover")
        assert stub.ping() == "pong"
        before = cluster.a.client.local_hits
        assert before > 0
        cluster.a.move("mover", "n2")
        # The object left: the probe misses, the wire path takes over,
        # and the cache (fed by the departure hint) routes to n2.
        assert stub.ping() == "pong"
        assert cluster.a.client.local_hits == before
        assert cluster.a.client.cached_location("mover") == "n2"

    def test_migrate_in_upgrades_to_bypass(self, cluster):
        cluster.b.register("incoming", MatrixServant())
        stub = cluster.a.stub("incoming", location="n2")
        assert stub.ping() == "pong"
        assert cluster.a.client.local_hits == 0
        cluster.a.move("incoming", "n1", location="n2")
        assert stub.ping() == "pong"
        assert cluster.a.client.local_hits == 1

    def test_stale_self_pointing_cache_heals(self, cluster):
        cluster.b.register("elsewhere", MatrixServant())
        stub = cluster.a.stub("elsewhere", location="n2")
        cluster.a.client.note_location("elsewhere", "n1")  # a lie
        assert stub.ping() == "pong"
        assert cluster.a.client.cached_location("elsewhere") != "n1"
        assert cluster.a.client.local_hits == 0

    def test_stale_remote_redirect_retries_the_ref(self, cluster):
        cluster.a.register("home", MatrixServant())
        stub = cluster.a.client.stub_for(
            RemoteRef(node_id="n1", name="home")
        )
        cluster.a.client.note_location("home", "n2")  # stale redirect
        assert stub.ping() == "pong"
        assert cluster.a.client.cached_location("home") is None

    def test_eviction_drops_cache_entries(self, cluster):
        client = cluster.a.client
        client.note_location("x", "n2")
        client.note_location("y", "n2")
        client.note_location("z", "n3")
        assert cluster.a.registry.evict_hints("n2") >= 0
        assert client.cached_location("x") is None
        assert client.cached_location("y") is None
        assert client.cached_location("z") == "n3"

    def test_lock_moved_redirect_feeds_cache_not_hints(self, cluster):
        registry = cluster.a.registry
        registry.observe_location("obj", "n2")
        assert cluster.a.client.cached_location("obj") == "n2"
        assert registry.forwarding_hint("obj") is None


class TestBypassDisabled:
    def test_simulated_network_never_attaches_the_ladder(self):
        from repro.net.simnet import SimNetwork

        net = SimNetwork()
        ns = Namespace("n1", net)
        ns.register("subject", MatrixServant())
        assert ns.stub("subject").ping() == "pong"
        assert ns.client._local is None
        assert ns.client.local_hits == 0

    def test_local_bypass_knob_off(self):
        net = TcpNetwork(local_bypass=False)
        try:
            ns = Namespace("n1", net)
            ns.register("subject", MatrixServant())
            assert ns.stub("subject").ping() == "pong"
            assert ns.client.local_hits == 0
        finally:
            net.shutdown()
