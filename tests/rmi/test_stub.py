"""Remote references and dynamic proxies."""

import pytest

from repro.errors import ConfigurationError
from repro.rmi.stub import (
    DetachedStubError,
    RemoteRef,
    Stub,
    detached_stub,
    interface_methods,
)


class GeoDataFilter:
    """An interface class, for method restriction."""

    def filter_data(self):
        ...

    def process_data(self):
        ...

    def _internal(self):
        ...


class TestRemoteRef:
    def test_moved_to_keeps_name_and_methods(self):
        ref = RemoteRef("alpha", "geo", methods=("f",))
        moved = ref.moved_to("beta")
        assert moved.node_id == "beta"
        assert moved.name == "geo"
        assert moved.methods == ("f",)

    def test_str_is_a_mage_url(self):
        assert str(RemoteRef("alpha", "geo")) == "mage://alpha/geo"

    def test_validates_parts(self):
        with pytest.raises(ConfigurationError):
            RemoteRef("bad node", "geo")

    def test_interface_methods_excludes_private(self):
        methods = interface_methods(GeoDataFilter)
        assert "filter_data" in methods
        assert "process_data" in methods
        assert "_internal" not in methods


class TestStub:
    def _recording_stub(self, methods=()):
        calls = []

        def invoke(ref, method, args, kwargs):
            calls.append((ref, method, args, kwargs))
            return "result"

        stub = Stub(RemoteRef("beta", "geo", methods=methods), invoke)
        return stub, calls

    def test_method_call_forwards(self):
        stub, calls = self._recording_stub()
        assert stub.filter_data(1, key=2) == "result"
        ref, method, args, kwargs = calls[0]
        assert method == "filter_data"
        assert args == (1,)
        assert kwargs == {"key": 2}

    def test_interface_restriction(self):
        stub, _ = self._recording_stub(methods=("filter_data",))
        stub.filter_data()
        with pytest.raises(AttributeError):
            stub.process_data()

    def test_open_proxy_forwards_anything(self):
        stub, calls = self._recording_stub()
        stub.totally_arbitrary_method()
        assert calls[0][1] == "totally_arbitrary_method"

    def test_field_writes_are_refused(self):
        stub, _ = self._recording_stub()
        with pytest.raises(ConfigurationError, match="field writes"):
            stub.value = 5

    def test_equality_by_ref(self):
        a = detached_stub(RemoteRef("beta", "geo"))
        b = detached_stub(RemoteRef("beta", "geo"))
        c = detached_stub(RemoteRef("gamma", "geo"))
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_repr_shows_ref(self):
        assert "mage://beta/geo" in repr(detached_stub(RemoteRef("beta", "geo")))

    def test_dunder_access_raises_attribute_error(self):
        # Keeps copy/pickle protocol probes from turning into remote calls.
        stub, calls = self._recording_stub()
        with pytest.raises(AttributeError):
            stub.__wrapped__
        assert calls == []


class TestFutureCaller:
    """The ``stub.futures`` async view (scatter-gather at the proxy level)."""

    def _stub(self, record, methods=()):
        ref = RemoteRef(node_id="n", name="obj", methods=methods)

        def invoke(r, method, args, kwargs):
            record.append((method, args, kwargs))
            return f"{method}-result"

        def invoke_async(r, method, args, kwargs):
            from repro.net.transport import CallFuture

            future = CallFuture(f"{r}.{method}")
            record.append((method, args, kwargs))
            future._resolve(f"{method}-future")
            return future

        return Stub(ref, invoke, invoke_async)

    def test_methods_return_futures(self):
        record = []
        stub = self._stub(record)
        future = stub.futures.work(1, k=2)
        assert future.result() == "work-future"
        assert record == [("work", (1,), {"k": 2})]

    def test_interface_restriction_applies(self):
        stub = self._stub([], methods=("allowed",))
        assert stub.futures.allowed().result() == "allowed-future"
        with pytest.raises(AttributeError):
            stub.futures.forbidden

    def test_sync_only_stub_gets_eager_futures(self):
        """A stub built without an async invoker still offers .futures."""
        record = []
        ref = RemoteRef(node_id="n", name="obj")
        stub = Stub(ref, lambda r, m, a, k: record.append(m) or "sync")
        future = stub.futures.ping()
        assert future.done()
        assert future.result() == "sync"
        assert record == ["ping"]

    def test_detached_stub_future_fails_at_result(self):
        stub = detached_stub(RemoteRef(node_id="n", name="obj"))
        future = stub.futures.anything()
        with pytest.raises(DetachedStubError):
            future.result()
