"""Wire-payload contracts: every protocol dataclass must survive pickling.

The TCP transport pickles whole messages; any payload that cannot
round-trip would split the two transports' behaviour.
"""

import pickle

import pytest

from repro.rmi import protocol
from repro.rmi.classdesc import describe_class
from repro.rmi.stub import RemoteRef
from repro.runtime.locks import LockGrant
from repro.bench.workloads import Counter

SAMPLES = [
    protocol.InvokeRequest(name="c", method="m", args_blob=b"blob"),
    protocol.LookupRequest(name="c"),
    protocol.BindRequest(name="c", ref=RemoteRef("a", "c"), replace=True),
    protocol.UnbindRequest(name="c"),
    protocol.ListRequest(),
    protocol.FindRequest(name="c", hops=("a", "b"), origin_hint="o",
                         verify=False),
    protocol.MoveRequest(name="c", target="b", lock_token="t"),
    protocol.ObjectTransfer(
        name="c", class_name="Counter", state_blob=b"s",
        class_desc=describe_class(Counter), class_hash="h", origin="a",
        transfer_id="x", shared=False,
    ),
    protocol.MoveComplete(name="c", location="b"),
    protocol.ClassRequest(class_name="Counter", if_hash="h"),
    protocol.ClassPush(class_name="Counter", source_hash="h",
                       desc=describe_class(Counter)),
    protocol.InstantiateRequest(class_name="Counter", name="c",
                                args_blob=b"a", shared=True),
    protocol.LockRequestPayload(name="c", target="b", requester="a",
                                wait_ms=10.0),
    protocol.UnlockPayload(name="c", token="t"),
    protocol.AgentHopPayload(
        name="c", class_name="Counter", state_blob=b"s",
        class_desc=None, class_hash="h", origin="a", tour_id="t",
        itinerary=("b", "c"), shared=False,
    ),
    protocol.AgentLaunch(name="c", itinerary=("b",), lock_token=""),
    protocol.LoadQuery(),
    protocol.RegistrySnapshot(bindings={"c": RemoteRef("a", "c")},
                              forwarding={"c": "b"}, class_names=("X",)),
]


@pytest.mark.parametrize(
    "payload", SAMPLES, ids=[type(s).__name__ for s in SAMPLES]
)
def test_payload_pickles_round_trip(payload):
    clone = pickle.loads(pickle.dumps(payload))
    assert clone == payload


def test_lock_grant_pickles():
    grant = LockGrant(token="t", kind="stay", name="c", location="a",
                      requester="b")
    assert pickle.loads(pickle.dumps(grant)) == grant


def test_class_descriptor_pickles():
    desc = describe_class(Counter)
    clone = pickle.loads(pickle.dumps(desc))
    assert clone == desc
    assert clone.source_hash == desc.source_hash


def test_payloads_are_immutable():
    import dataclasses

    request = protocol.FindRequest(name="c")
    with pytest.raises(dataclasses.FrozenInstanceError):
        request.name = "other"
