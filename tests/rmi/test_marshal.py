"""Marshalling: by-value data, by-reference stubs, mobile-instance refusal."""

import pytest

from repro.errors import MarshalError
from repro.rmi.classdesc import describe_class, load_class
from repro.rmi.marshal import (
    marshal,
    marshal_call,
    marshalled_size,
    unmarshal,
    unmarshal_call,
)
from repro.rmi.stub import RemoteRef, Stub, detached_stub
from repro.bench.workloads import Counter


class TestRoundTrip:
    @pytest.mark.parametrize("value", [
        None,
        42,
        3.14,
        "text",
        b"bytes",
        [1, 2, 3],
        {"k": (1, 2)},
        {1, 2, 3},
        (None, True, False),
    ])
    def test_plain_values(self, value):
        assert unmarshal(marshal(value)) == value

    def test_by_value_semantics(self):
        original = {"list": [1, 2]}
        copy = unmarshal(marshal(original))
        copy["list"].append(3)
        assert original["list"] == [1, 2]

    def test_nested_structures(self):
        value = {"a": [{"b": (1, [2, {"c": 3}])}]}
        assert unmarshal(marshal(value)) == value

    def test_unpicklable_raises_marshal_error(self):
        with pytest.raises(MarshalError):
            marshal(lambda: None)

    def test_size_accounting(self):
        assert marshalled_size(b"x" * 1000) > 1000


class TestStubTransport:
    def test_stub_travels_as_ref(self):
        ref = RemoteRef(node_id="beta", name="counter")
        stub = detached_stub(ref)
        blob = marshal({"the_stub": stub})

        seen_refs = []

        def factory(incoming_ref):
            seen_refs.append(incoming_ref)
            return detached_stub(incoming_ref)

        result = unmarshal(blob, factory)
        assert seen_refs == [ref]
        assert result["the_stub"].ref == ref

    def test_default_factory_gives_detached_stub(self):
        from repro.rmi.stub import DetachedStubError

        ref = RemoteRef(node_id="beta", name="counter")
        stub = unmarshal(marshal(detached_stub(ref)))
        assert isinstance(stub, Stub)
        with pytest.raises(DetachedStubError):
            stub.increment()

    def test_raw_pickle_of_stub_is_refused(self):
        import pickle

        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            pickle.dumps(detached_stub(RemoteRef("a", "x")))


class TestMobileInstanceRefusal:
    def test_mobile_instance_cannot_marshal(self):
        desc = describe_class(Counter)
        clone = load_class(desc, "testns")
        instance = clone(5)
        with pytest.raises(MarshalError, match="mobile"):
            marshal(instance)

    def test_native_instance_marshals_fine(self):
        # The original (non-clone) class is an ordinary picklable object.
        restored = unmarshal(marshal(Counter(5)))
        assert restored.get() == 5


class TestCallBlobs:
    def test_args_kwargs_round_trip(self):
        blob = marshal_call((1, "two"), {"three": 3})
        args, kwargs = unmarshal_call(blob)
        assert args == (1, "two")
        assert kwargs == {"three": 3}

    def test_empty_call(self):
        args, kwargs = unmarshal_call(marshal_call((), {}))
        assert args == ()
        assert kwargs == {}

    def test_rejects_non_call_blob(self):
        with pytest.raises(MarshalError):
            unmarshal_call(marshal("not a call"))
