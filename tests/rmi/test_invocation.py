"""End-to-end RMI invocation: invoker + client + stubs over the simnet."""

import pytest

from repro.errors import NoSuchObjectError, RemoteInvocationError
from repro.net.simnet import SimNetwork
from repro.runtime.namespace import Namespace
from repro.bench.workloads import Counter, GeoDataFilterImpl


@pytest.fixture
def pair_ns():
    net = SimNetwork()
    return Namespace("alpha", net), Namespace("beta", net)


class TestInvocation:
    def test_remote_method_with_args(self, pair_ns):
        alpha, beta = pair_ns
        beta.register("counter", Counter(100))
        stub = alpha.stub("counter", location="beta")
        assert stub.add(5) == 105

    def test_arguments_cross_by_value(self, pair_ns):
        alpha, beta = pair_ns
        beta.register("geo", GeoDataFilterImpl(threshold=0.5))
        readings = [0.1, 0.9]
        stub = alpha.stub("geo", location="beta")
        stub.ingest(readings)
        readings.append(0.95)  # caller-side mutation must not leak over
        assert stub.filter_data() == 1

    def test_results_cross_by_value(self, pair_ns):
        alpha, beta = pair_ns
        beta.register("geo", GeoDataFilterImpl())
        stub = alpha.stub("geo", location="beta")
        stub.ingest([0.9])
        stub.filter_data()
        summary = stub.process_data()
        summary["samples"] = 999  # mutating the copy must not affect servant
        assert stub.process_data()["samples"] == 1

    def test_servant_exception_wrapped_with_traceback(self, pair_ns):
        alpha, beta = pair_ns
        beta.register("counter", Counter())
        stub = alpha.stub("counter", location="beta")
        with pytest.raises(RemoteInvocationError) as excinfo:
            stub.add("not a number")
        assert "TypeError" in str(excinfo.value)
        assert "Traceback" in excinfo.value.remote_traceback

    def test_missing_servant(self, pair_ns):
        alpha, _beta = pair_ns
        stub = alpha.stub("ghost", location="beta")
        with pytest.raises(NoSuchObjectError):
            stub.get()

    def test_missing_method(self, pair_ns):
        alpha, beta = pair_ns
        beta.register("counter", Counter())
        stub = alpha.stub("counter", location="beta")
        with pytest.raises(NoSuchObjectError):
            stub.no_such_method()

    def test_private_methods_are_not_remote(self, pair_ns):
        alpha, beta = pair_ns
        beta.register("counter", Counter())
        stub = alpha.stub("counter", location="beta")
        with pytest.raises(NoSuchObjectError):
            stub._secret()

    def test_stub_as_argument_reattaches(self, pair_ns):
        """A stub passed to a remote method arrives live (by reference)."""
        alpha, beta = pair_ns
        beta.register("counter", Counter(5))

        class Caller:
            def poke(self, counter_stub):
                return counter_stub.increment()

        alpha.register("caller", Caller())
        counter_stub = alpha.stub("counter", location="beta")
        caller_stub = beta.stub("caller", location="alpha")
        # beta asks alpha's Caller to poke beta's counter via the stub.
        assert caller_stub.poke(counter_stub) == 6

    def test_local_invocation_works_too(self, pair_ns):
        alpha, _beta = pair_ns
        alpha.register("local-counter", Counter())
        stub = alpha.stub("local-counter", location="alpha")
        assert stub.increment() == 1
