"""RMI registries and the Naming client."""

import pytest

from repro.errors import AlreadyBoundError, NotBoundError
from repro.net.simnet import SimNetwork
from repro.rmi.registry import RmiRegistry
from repro.rmi.stub import RemoteRef
from repro.runtime.namespace import Namespace
from repro.bench.workloads import Counter


class TestRmiRegistry:
    def test_bind_lookup(self):
        registry = RmiRegistry("alpha")
        ref = RemoteRef("alpha", "counter")
        registry.bind("counter", ref)
        assert registry.lookup("counter") == ref

    def test_bind_refuses_overwrite(self):
        registry = RmiRegistry("alpha")
        registry.bind("x", RemoteRef("alpha", "x"))
        with pytest.raises(AlreadyBoundError):
            registry.bind("x", RemoteRef("beta", "x"))

    def test_rebind_replaces(self):
        registry = RmiRegistry("alpha")
        registry.bind("x", RemoteRef("alpha", "x"))
        registry.rebind("x", RemoteRef("beta", "x"))
        assert registry.lookup("x").node_id == "beta"

    def test_lookup_unbound(self):
        with pytest.raises(NotBoundError):
            RmiRegistry("alpha").lookup("ghost")

    def test_unbind(self):
        registry = RmiRegistry("alpha")
        registry.bind("x", RemoteRef("alpha", "x"))
        registry.unbind("x")
        assert not registry.contains("x")

    def test_unbind_unbound(self):
        with pytest.raises(NotBoundError):
            RmiRegistry("alpha").unbind("ghost")

    def test_list_bindings_sorted(self):
        registry = RmiRegistry("alpha")
        registry.bind("zebra", RemoteRef("alpha", "zebra"))
        registry.bind("apple", RemoteRef("alpha", "apple"))
        assert registry.list_bindings() == ["apple", "zebra"]

    def test_snapshot_is_a_copy(self):
        registry = RmiRegistry("alpha")
        registry.bind("x", RemoteRef("alpha", "x"))
        snap = registry.snapshot()
        snap.clear()
        assert registry.contains("x")


class TestNaming:
    @pytest.fixture
    def namespaces(self):
        net = SimNetwork()
        alpha = Namespace("alpha", net)
        beta = Namespace("beta", net)
        return alpha, beta

    def test_lookup_across_nodes(self, namespaces):
        alpha, beta = namespaces
        beta.register("counter", Counter(7))
        stub = alpha.naming.lookup("mage://beta/counter")
        assert stub.increment() == 8

    def test_lookup_unbound_raises(self, namespaces):
        alpha, _beta = namespaces
        with pytest.raises(NotBoundError):
            alpha.naming.lookup("mage://beta/ghost")

    def test_remote_bind_and_list(self, namespaces):
        alpha, beta = namespaces
        ref = RemoteRef("beta", "published")
        alpha.naming.bind("mage://beta/published", ref)
        assert "published" in alpha.naming.list_bindings("beta")

    def test_remote_bind_conflict(self, namespaces):
        alpha, beta = namespaces
        ref = RemoteRef("beta", "x")
        alpha.naming.bind("mage://beta/x", ref)
        with pytest.raises(AlreadyBoundError):
            alpha.naming.bind("mage://beta/x", ref)

    def test_remote_rebind(self, namespaces):
        alpha, beta = namespaces
        alpha.naming.bind("mage://beta/x", RemoteRef("beta", "x"))
        alpha.naming.rebind("mage://beta/x", RemoteRef("alpha", "x"))
        assert alpha.naming.lookup_ref("mage://beta/x").node_id == "alpha"

    def test_remote_unbind(self, namespaces):
        alpha, beta = namespaces
        alpha.naming.bind("mage://beta/x", RemoteRef("beta", "x"))
        alpha.naming.unbind("mage://beta/x")
        with pytest.raises(NotBoundError):
            alpha.naming.lookup("mage://beta/x")

    def test_lookup_accepts_mageurl(self, namespaces):
        from repro.util.ids import MageUrl

        alpha, beta = namespaces
        beta.register("counter", Counter())
        stub = alpha.naming.lookup(MageUrl("beta", "counter"))
        assert stub.increment() == 1
