"""Property-based tests: the simulated network's delivery guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.conditions import BernoulliLoss, ConstantLatency
from repro.net.message import MessageKind
from repro.net.simnet import SimNetwork


@given(
    p=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(min_value=0, max_value=10_000),
    calls=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=40, deadline=None)
def test_calls_always_succeed_within_retry_budget(p, seed, calls):
    """With loss ≤ 40% and a generous budget, every call completes and
    delivers exactly-once results."""
    net = SimNetwork(loss=BernoulliLoss(p, seed=seed))
    net.retry_budget = 50  # loss^51 ≈ 0: success is effectively certain
    executed = []
    net.register("a", lambda m: None)
    net.register("b", lambda m: executed.append(m.payload) or m.payload)
    for i in range(calls):
        assert net.call("a", "b", MessageKind.PING, i) == i
    # At-most-once execution: no payload processed twice.
    assert executed == list(range(calls))


@given(
    latency=st.floats(min_value=0.0, max_value=50.0),
    calls=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_virtual_time_is_messages_times_latency(latency, calls):
    net = SimNetwork(latency=ConstantLatency(remote_ms=latency, local_ms=0.0))
    net.register("a", lambda m: None)
    net.register("b", lambda m: "ok")
    for _ in range(calls):
        net.call("a", "b", MessageKind.PING)
    expected = calls * 2 * latency  # request + reply per call
    assert abs(net.clock.now_ms() - expected) < 1e-6


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    p=st.floats(min_value=0.0, max_value=0.3),
)
@settings(max_examples=30, deadline=None)
def test_trace_accounts_for_every_attempt(seed, p):
    """Delivered + dropped events add up: nothing vanishes untraced."""
    net = SimNetwork(loss=BernoulliLoss(p, seed=seed))
    net.retry_budget = 50  # hypothesis hunts rare budget exhaustions
    net.register("a", lambda m: None)
    net.register("b", lambda m: "ok")
    n_calls = 10
    for i in range(n_calls):
        net.call("a", "b", MessageKind.PING, i)
    events = net.trace.events()
    delivered = [e for e in events if not e.dropped]
    # Exactly n distinct requests were delivered (a lost *reply* makes the
    # same msg_id deliver again, so raw counts may exceed n)...
    request_ids = {e.msg_id for e in delivered if e.kind == "PING"}
    assert len(request_ids) == n_calls
    # ... every delivered request got some delivered reply ...
    replies = [e for e in delivered if e.kind == "REPLY(PING)"]
    assert len(replies) >= n_calls
    # ... and nothing outside requests/replies appears in the trace.
    assert {e.kind for e in events} <= {"PING", "REPLY(PING)"}
