"""Property-based tests: lock-table safety invariants (§4.4).

Whatever sequence of acquires/releases arrives, the table must never hold
a move lock together with any other lock on the same object, and released
state must be garbage-collected.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import LockError, LockTimeoutError
from repro.runtime.locks import LockManager, MOVE, STAY

TARGETS = ["alpha", "beta", "gamma"]  # alpha == the lock manager's node


class LockMachine(RuleBasedStateMachine):
    """Drive one object's lock queue with non-blocking acquires."""

    def __init__(self):
        super().__init__()
        self.locks = LockManager("alpha")
        self.held: dict[str, str] = {}  # token -> kind

    @rule(target_node=st.sampled_from(TARGETS))
    def try_acquire(self, target_node):
        try:
            grant = self.locks.acquire(
                "obj", target_node, "client", timeout_ms=0
            )
        except LockTimeoutError:
            return
        self.held[grant.token] = grant.kind

    @rule(data=st.data())
    def release_one(self, data):
        if not self.held:
            return
        token = data.draw(st.sampled_from(sorted(self.held)))
        self.locks.release("obj", token)
        del self.held[token]

    @rule()
    def release_bogus_token_fails(self):
        try:
            self.locks.release("obj", "bogus")
        except LockError:
            pass
        else:
            raise AssertionError("bogus release must fail")

    @invariant()
    def move_is_exclusive(self):
        kinds = list(self.held.values())
        if MOVE in kinds:
            assert len(kinds) == 1, f"move held alongside {kinds}"

    @invariant()
    def snapshot_matches_model(self):
        snap = self.locks.snapshot("obj")
        kinds = list(self.held.values())
        assert snap["stays"] == kinds.count(STAY)
        assert snap["move"] == (MOVE in kinds)


TestLockMachine = LockMachine.TestCase
TestLockMachine.settings = settings(max_examples=50, stateful_step_count=30)


@given(st.lists(st.sampled_from(TARGETS), min_size=1, max_size=20))
def test_grant_kind_is_a_pure_function_of_target(targets):
    locks = LockManager("alpha")
    for i, target in enumerate(targets):
        grant = locks.acquire(f"obj{i}", target, "client")
        expected = STAY if target == "alpha" else MOVE
        assert grant.kind == expected
        locks.release(f"obj{i}", grant.token)
