"""Property-based tests: marshalling round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rmi.marshal import marshal, marshal_call, unmarshal, unmarshal_call
from repro.rmi.stub import RemoteRef, detached_stub


def json_like(max_leaves: int = 20):
    """Picklable, __eq__-friendly values shaped like real RMI payloads."""
    return st.recursive(
        st.none()
        | st.booleans()
        | st.integers()
        | st.floats(allow_nan=False)
        | st.text(max_size=30)
        | st.binary(max_size=30),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4)
        | st.tuples(children, children),
        max_leaves=max_leaves,
    )


@given(json_like())
@settings(max_examples=200)
def test_marshal_round_trips(value):
    assert unmarshal(marshal(value)) == value


@given(json_like(max_leaves=8))
def test_marshal_is_a_deep_copy(value):
    blob = marshal([value])
    copy = unmarshal(blob)
    assert copy == [value]
    copy.append("mutation")
    assert unmarshal(blob) == [value]


@given(
    st.tuples(json_like(max_leaves=5)),
    st.dictionaries(st.text(min_size=1, max_size=8), json_like(max_leaves=5),
                    max_size=3),
)
def test_call_blobs_round_trip(args, kwargs):
    got_args, got_kwargs = unmarshal_call(marshal_call(args, kwargs))
    assert got_args == args
    assert got_kwargs == kwargs


_IDENT = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=12
)


@given(_IDENT, _IDENT)
def test_stubs_round_trip_as_refs(node_id, name):
    ref = RemoteRef(node_id=node_id, name=name)
    value = {"stub": detached_stub(ref), "plain": 1}
    result = unmarshal(marshal(value))
    assert result["stub"].ref == ref
    assert result["plain"] == 1
