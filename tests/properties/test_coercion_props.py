"""Property-based tests: the coercion engine and the design space."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.coercion import (
    Action,
    Placement,
    TABLE2_MODELS,
    classify,
    coerce,
    effective_model,
)
from repro.core.triple import (
    CANONICAL_TRIPLES,
    Locus,
    MobilityTriple,
    design_space,
    model_for,
    models_covering,
)

_IDENT = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=6
)


@given(cloc=_IDENT, here=_IDENT, target=st.none() | _IDENT)
def test_classify_is_total_and_consistent(cloc, here, target):
    placement = classify(cloc, here, target)
    assert isinstance(placement, Placement)
    local = cloc == here
    if local:
        assert placement in (
            Placement.LOCAL_AT_TARGET, Placement.LOCAL_NOT_AT_TARGET
        )
    else:
        assert placement in (
            Placement.REMOTE_AT_TARGET, Placement.REMOTE_NOT_AT_TARGET
        )


@given(
    model=st.sampled_from(TABLE2_MODELS + ("GREV", "LPC")),
    placement=st.sampled_from(list(Placement)),
)
def test_coerce_is_total_over_known_models(model, placement):
    action = coerce(model, placement)
    assert isinstance(action, Action)
    # The effective model is always itself a known model name.
    assert effective_model(model, action) in (
        model, "RPC", "LPC",
    )


@given(
    model=st.sampled_from(TABLE2_MODELS),
    placement=st.sampled_from(list(Placement)),
)
def test_at_target_never_moves(model, placement):
    """Whenever the component is already at the target, no coercion outcome
    may imply movement: the action is RPC/LPC coercion or plain default
    for the no-move models."""
    if placement not in (Placement.LOCAL_AT_TARGET, Placement.REMOTE_AT_TARGET):
        return
    action = coerce(model, placement)
    if model in ("MA", "REV"):
        assert action in (Action.DEFAULT, Action.COERCE_RPC)
    if model == "COD" and placement is Placement.LOCAL_AT_TARGET:
        assert action is Action.COERCE_LPC


@given(st.sampled_from(design_space()))
def test_model_for_agrees_with_canonical_table(triple):
    name = model_for(triple)
    if name is not None:
        assert CANONICAL_TRIPLES[name] == triple


@given(
    location=st.sampled_from([Locus.LOCAL, Locus.REMOTE]),
    target=st.sampled_from([Locus.LOCAL, Locus.REMOTE]),
    moves=st.booleans(),
)
def test_every_concrete_point_is_covered(location, target, moves):
    """§3.3: mobility attributes can express every point in the space —
    every concrete (non-wildcard) point has at least one covering model."""
    covering = models_covering(MobilityTriple(location, target, moves))
    assert covering, f"uncovered point: {location}, {target}, {moves}"
    wildcard = "GREV" if moves else "CLE"
    assert wildcard in covering
