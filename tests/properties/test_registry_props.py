"""Property-based tests: forwarding chains always converge (§4.1).

For any sequence of moves of one object around a cluster, a verified find
from any node must return the true location, and (with collapsing) leave
that node's forwarding table pointing straight at it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.bench.workloads import Counter

NODES = ["n0", "n1", "n2", "n3", "n4"]

moves = st.lists(st.sampled_from(NODES), min_size=0, max_size=8)


@given(tour=moves, observer=st.sampled_from(NODES))
@settings(max_examples=40, deadline=None)
def test_verified_find_always_converges(tour, observer):
    with Cluster(NODES, synchronous_casts=True) as cluster:
        cluster["n0"].register("obj", Counter())
        location = "n0"
        for target in tour:
            initiator = cluster[location].namespace
            location = initiator.move("obj", target)
        found = cluster[observer].find("obj", origin_hint="n0", verify=True)
        assert found == location
        # Path collapsing: the observer now points straight at the object.
        if observer != location:
            hint = cluster[observer].namespace.registry.forwarding_hint("obj")
            assert hint == location


@given(tour=moves)
@settings(max_examples=40, deadline=None)
def test_exactly_one_copy_exists_after_any_tour(tour):
    with Cluster(NODES, synchronous_casts=True) as cluster:
        cluster["n0"].register("obj", Counter(7))
        location = "n0"
        for target in tour:
            location = cluster[location].namespace.move("obj", target)
        hosts = [
            node.node_id for node in cluster
            if node.namespace.store.contains("obj")
        ]
        assert hosts == [location]
        # And the state rode along unharmed.
        assert cluster[location].stub("obj", location=location).get() == 7


@given(tour=moves, data=st.data())
@settings(max_examples=30, deadline=None)
def test_interleaved_finds_never_break_chains(tour, data):
    """Collapsing mid-tour must never corrupt later resolution."""
    with Cluster(NODES, synchronous_casts=True) as cluster:
        cluster["n0"].register("obj", Counter())
        location = "n0"
        for target in tour:
            observer = data.draw(st.sampled_from(NODES))
            assert cluster[observer].find(
                "obj", origin_hint="n0", verify=True
            ) == location
            location = cluster[location].namespace.move("obj", target)
        assert cluster["n4"].find("obj", origin_hint="n0", verify=True) == location
