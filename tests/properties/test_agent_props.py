"""Property-based tests: agent tours over arbitrary itineraries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core.agents import Agent

NODES = ["n0", "n1", "n2", "n3"]


class TrailAgent(Agent):
    """Records its visit trail (inherited) and counts hops."""

    def __init__(self):
        super().__init__()
        self.hops = 0

    def on_arrival(self, ctx):
        super().on_arrival(ctx)
        self.hops += 1


itineraries = st.lists(st.sampled_from(NODES), min_size=1, max_size=6)


@given(itinerary=itineraries)
@settings(max_examples=30, deadline=None)
def test_agent_visits_exactly_the_itinerary(itinerary):
    with Cluster(NODES, synchronous_casts=True) as cluster:
        cluster["n0"].agents.launch(TrailAgent(), "agent", tuple(itinerary))
        cluster.quiesce()
        final = itinerary[-1]
        assert cluster[final].namespace.store.contains("agent")
        agent = cluster[final].namespace.store.get("agent")
        assert agent.visited == list(itinerary)
        assert agent.hops == len(itinerary)
        # Exactly one copy anywhere.
        hosts = [n.node_id for n in cluster
                 if n.namespace.store.contains("agent")]
        assert hosts == [final]


@given(itinerary=itineraries)
@settings(max_examples=20, deadline=None)
def test_tour_leaves_a_resolvable_trail(itinerary):
    """After any tour, every node can find the agent via origin + chains."""
    with Cluster(NODES, synchronous_casts=True) as cluster:
        cluster["n0"].agents.launch(TrailAgent(), "agent", tuple(itinerary))
        cluster.quiesce()
        final = itinerary[-1]
        for observer in NODES:
            found = cluster[observer].find(
                "agent", origin_hint="n0", verify=True
            )
            assert found == final


@given(itinerary=itineraries, data=st.data())
@settings(max_examples=20, deadline=None)
def test_agent_state_monotonically_accumulates(itinerary, data):
    """Weak migration must never lose or duplicate hook side effects."""
    with Cluster(NODES, synchronous_casts=True) as cluster:
        extra = data.draw(st.lists(st.sampled_from(NODES), max_size=3))
        cluster["n0"].agents.launch(TrailAgent(), "agent", tuple(itinerary))
        cluster.quiesce()
        location = itinerary[-1]
        for target in extra:
            cluster[location].agents.start_tour("agent", (target,))
            cluster.quiesce()
            location = target
        agent = cluster[location].namespace.store.get("agent")
        assert agent.visited == list(itinerary) + list(extra)
