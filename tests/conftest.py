"""Shared fixtures: cluster factories over the simulated network."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster


@pytest.fixture
def make_cluster():
    """Factory for simulated-network clusters, torn down after the test.

    Casts run synchronously by default so agent tours are deterministic;
    async-specific tests pass ``synchronous_casts=False`` explicitly.
    """
    created: list[Cluster] = []

    def factory(node_ids, **kwargs) -> Cluster:
        kwargs.setdefault("synchronous_casts", True)
        cluster = Cluster(node_ids, **kwargs)
        created.append(cluster)
        return cluster

    yield factory
    for cluster in created:
        cluster.shutdown()


@pytest.fixture
def pair(make_cluster) -> Cluster:
    """A two-node cluster: alpha, beta."""
    return make_cluster(["alpha", "beta"])


@pytest.fixture
def trio(make_cluster) -> Cluster:
    """A three-node cluster: alpha, beta, gamma."""
    return make_cluster(["alpha", "beta", "gamma"])


@pytest.fixture
def quad(make_cluster) -> Cluster:
    """A four-node cluster: alpha, beta, gamma, delta."""
    return make_cluster(["alpha", "beta", "gamma", "delta"])
