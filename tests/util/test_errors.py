"""Error contracts: hierarchy, fields, and messages callers rely on."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_roots_at_mage_error(self):
        families = [
            errors.ConfigurationError,
            errors.TransportError,
            errors.RmiError,
            errors.RuntimeMageError,
            errors.AttributeError_,
            errors.ExtensionError,
        ]
        for family in families:
            assert issubclass(family, errors.MageError)

    def test_one_except_catches_the_world(self):
        representative = [
            errors.NodeUnreachableError("n"),
            errors.MessageLostError("m"),
            errors.MarshalError("m"),
            errors.NotBoundError("x"),
            errors.AlreadyBoundError("x"),
            errors.NoSuchObjectError("x"),
            errors.ComponentNotFoundError("x"),
            errors.ClassTransferError("c"),
            errors.MigrationError("m"),
            errors.ObjectPinnedError("p"),
            errors.LockMovedError("x", "beta"),
            errors.LockTimeoutError("t"),
            errors.ImmobileObjectError("x", "a", "b"),
            errors.CoercionError("c"),
            errors.TargetRestrictedError("t"),
            errors.AccessDeniedError("p", "invoke", "r"),
            errors.ResourceExhaustedError("n", "slots", 1, 0),
        ]
        for error in representative:
            with pytest.raises(errors.MageError):
                raise error

    def test_transport_family(self):
        assert issubclass(errors.NodeUnreachableError, errors.TransportError)
        assert issubclass(errors.MessageLostError, errors.TransportError)

    def test_lock_family(self):
        assert issubclass(errors.LockMovedError, errors.LockError)
        assert issubclass(errors.LockTimeoutError, errors.LockError)


class TestFields:
    def test_node_unreachable_carries_node_and_reason(self):
        error = errors.NodeUnreachableError("beta", "crashed")
        assert error.node_id == "beta"
        assert error.reason == "crashed"
        assert "crashed" in str(error)

    def test_lock_moved_carries_new_location(self):
        error = errors.LockMovedError("obj", "gamma")
        assert error.new_location == "gamma"
        assert "gamma" in str(error)

    def test_immobile_object_names_both_locations(self):
        error = errors.ImmobileObjectError("obj", "beta", "gamma")
        assert (error.expected, error.actual) == ("beta", "gamma")
        assert "beta" in str(error) and "gamma" in str(error)

    def test_not_bound_names_the_name(self):
        assert errors.NotBoundError("svc").name == "svc"

    def test_remote_invocation_carries_traceback(self):
        error = errors.RemoteInvocationError("boom", remote_traceback="tb")
        assert error.remote_traceback == "tb"

    def test_resource_exhausted_quantities(self):
        error = errors.ResourceExhaustedError("n", "slots", 2.0, 0.5)
        assert error.requested == 2.0
        assert error.available == 0.5

    def test_access_denied_triple(self):
        error = errors.AccessDeniedError("eve", "move_in", "node:X")
        assert (error.principal, error.action) == ("eve", "move_in")

    def test_no_such_object_mentions_node(self):
        error = errors.NoSuchObjectError("obj", "beta")
        assert "beta" in str(error)
