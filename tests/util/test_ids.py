"""Identifier and URL validation."""

import pytest

from repro.errors import ConfigurationError
from repro.util.ids import (
    MageUrl,
    fresh_token,
    validate_component_name,
    validate_node_id,
)


class TestValidation:
    def test_accepts_plain_identifiers(self):
        assert validate_node_id("sensor1") == "sensor1"
        assert validate_component_name("geoData") == "geoData"

    def test_accepts_dots_dashes_underscores(self):
        assert validate_component_name("geo.data_v2-final") == "geo.data_v2-final"

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            validate_node_id("")

    def test_rejects_slash(self):
        with pytest.raises(ConfigurationError):
            validate_component_name("a/b")

    def test_rejects_whitespace(self):
        with pytest.raises(ConfigurationError):
            validate_node_id("node one")

    def test_rejects_non_string(self):
        with pytest.raises(ConfigurationError):
            validate_node_id(42)

    def test_error_names_the_bad_characters(self):
        with pytest.raises(ConfigurationError, match="!"):
            validate_component_name("bad!name")


class TestMageUrl:
    def test_round_trip(self):
        url = MageUrl(node_id="lab", name="geoData")
        assert MageUrl.parse(str(url)) == url

    def test_str_format(self):
        assert str(MageUrl("lab", "geoData")) == "mage://lab/geoData"

    def test_parse(self):
        url = MageUrl.parse("mage://sensor1/filter")
        assert url.node_id == "sensor1"
        assert url.name == "filter"

    def test_parse_rejects_wrong_scheme(self):
        with pytest.raises(ConfigurationError):
            MageUrl.parse("rmi://lab/geoData")

    def test_parse_rejects_missing_name(self):
        with pytest.raises(ConfigurationError):
            MageUrl.parse("mage://lab")

    def test_parse_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            MageUrl.parse("mage://lab/")

    def test_constructor_validates_parts(self):
        with pytest.raises(ConfigurationError):
            MageUrl("bad node", "x")

    def test_is_hashable_and_frozen(self):
        url = MageUrl("lab", "geoData")
        assert {url: 1}[MageUrl("lab", "geoData")] == 1


class TestFreshToken:
    def test_unique(self):
        tokens = {fresh_token() for _ in range(100)}
        assert len(tokens) == 100

    def test_prefix(self):
        assert fresh_token("lock").startswith("lock-")

    def test_thread_safe_uniqueness(self):
        import threading

        seen: list[str] = []

        def grab():
            for _ in range(200):
                seen.append(fresh_token("t"))

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen))
