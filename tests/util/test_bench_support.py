"""The bench-support package: table rendering, harness math, paper data."""

import pytest

from repro.bench.harness import InvocationSeries, measure_invocations
from repro.bench.paper import BASELINE, PAPER_TABLE3, TABLE3_ORDERINGS, paper_ratio
from repro.bench.tables import render_arrows, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["A", "Blong"], [["xxxxx", "y"]])
        lines = text.splitlines()
        assert lines[0] == "A     | Blong"
        assert lines[2] == "xxxxx | y    "

    def test_title_and_rule(self):
        text = render_table(["A"], [["1"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="

    def test_cells_are_stringified(self):
        text = render_table(["n"], [[42], [3.5]])
        assert "42" in text
        assert "3.5" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_arrows_numbers_lines(self):
        text = render_arrows("T", ["a -> b: X", "b -> a: Y"])
        assert "  1. a -> b: X" in text
        assert "  2. b -> a: Y" in text


class TestInvocationSeries:
    def _series(self):
        series = InvocationSeries(label="m")
        series.virtual_ms.extend([100.0, 20.0, 20.0, 20.0])
        series.wall_us.extend([1.0, 2.0, 3.0, 4.0])
        series.remote_messages.extend([10, 2, 2, 2])
        return series

    def test_single_is_the_cold_run(self):
        assert self._series().single_ms == 100.0

    def test_amortized_is_the_mean(self):
        assert self._series().amortized_ms == 40.0

    def test_warm_messages_is_the_last(self):
        assert self._series().warm_messages == 2

    def test_row_shape(self):
        row = self._series().row()
        assert row[0] == "m"
        assert row[3] == "10/2"


class TestMeasureInvocations:
    def test_measures_virtual_deltas(self, pair):
        from repro.bench.workloads import Counter

        pair["beta"].register("c", Counter())
        stub = pair["alpha"].stub("c", location="beta")
        series = measure_invocations(pair, "t", stub.increment, iterations=5)
        assert len(series.virtual_ms) == 5
        # Each invocation is one round trip of the default 10 ms latency.
        assert all(abs(v - 20.0) < 1.0 for v in series.virtual_ms)
        assert all(m == 2 for m in series.remote_messages)

    def test_rejects_nonpositive_iterations(self, pair):
        with pytest.raises(ValueError):
            measure_invocations(pair, "t", lambda: None, iterations=0)


class TestPaperData:
    def test_baseline_is_rmi(self):
        assert BASELINE == "Java's RMI"
        assert paper_ratio(BASELINE) == 1.0

    def test_ratios_match_the_published_numbers(self):
        assert paper_ratio("Traditional REV (TREV)") == pytest.approx(4.1)
        assert paper_ratio("MA") == pytest.approx(3.15)

    def test_orderings_are_consistent_with_the_numbers(self):
        for cheaper, dearer in TABLE3_ORDERINGS:
            assert (
                PAPER_TABLE3[cheaper].amortized_ms
                <= PAPER_TABLE3[dearer].amortized_ms
            )
