"""Virtual and wall clocks."""

import pytest

from repro.util.clock import SimClock, Stopwatch, WallClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ms() == 0.0

    def test_custom_start(self):
        assert SimClock(start_ms=50.0).now_ms() == 50.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(2.5)
        assert clock.now_ms() == 12.5

    def test_advance_zero_is_noop(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now_ms() == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_concurrent_advances_all_counted(self):
        import threading

        clock = SimClock()

        def work():
            for _ in range(1000):
                clock.advance(1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert clock.now_ms() == 4000.0


class TestWallClock:
    def test_monotonic(self):
        clock = WallClock()
        a = clock.now_ms()
        b = clock.now_ms()
        assert b >= a

    def test_advance_sleeps(self):
        clock = WallClock()
        before = clock.now_ms()
        clock.advance(5.0)
        assert clock.now_ms() - before >= 4.0  # scheduling slop allowed


class TestStopwatch:
    def test_measures_virtual_interval(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(12.5)
        assert watch.elapsed_ms() == 12.5

    def test_restart(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(10.0)
        watch.restart()
        clock.advance(3.0)
        assert watch.elapsed_ms() == 3.0
