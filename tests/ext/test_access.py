"""Access control (§7 future work): domains, verbs, guarded namespaces."""

import pytest

from repro.errors import AccessDeniedError
from repro.ext.access import ANY, AccessPolicy, guard
from repro.bench.workloads import Counter


class TestPolicy:
    def test_trusting_by_default(self):
        """The paper's current MAGE 'trusts its constituent servers'."""
        policy = AccessPolicy()
        assert policy.permits("anyone", "invoke")
        assert policy.permits("anyone", "move_in")

    def test_restrict_flips_default(self):
        policy = AccessPolicy().restrict()
        policy.trust_domain = False
        assert not policy.permits("anyone", "invoke")

    def test_explicit_allow(self):
        policy = AccessPolicy().restrict()
        policy.trust_domain = False
        policy.allow("friend", "invoke")
        assert policy.permits("friend", "invoke")
        assert not policy.permits("friend", "move_in")
        assert not policy.permits("stranger", "invoke")

    def test_allow_all_verbs(self):
        policy = AccessPolicy().restrict()
        policy.trust_domain = False
        policy.allow("friend")
        assert policy.permits("friend", "move_out")

    def test_wildcard_principal(self):
        policy = AccessPolicy().restrict()
        policy.trust_domain = False
        policy.allow(ANY, "invoke")
        assert policy.permits("anyone", "invoke")

    def test_same_domain_trust(self):
        policy = AccessPolicy(domain="labnet").restrict()
        policy.join_domain("peer", "labnet")
        policy.join_domain("outsider", "wildnet")
        assert policy.permits("peer", "move_in")
        assert not policy.permits("outsider", "move_in")

    def test_domain_name_rules(self):
        policy = AccessPolicy(domain="labnet").restrict()
        policy.trust_domain = False
        policy.join_domain("visitor", "partnernet")
        policy.allow("partnernet", "invoke")
        assert policy.permits("visitor", "invoke")
        assert not policy.permits("visitor", "move_in")

    def test_unknown_verb_rejected(self):
        with pytest.raises(ValueError):
            AccessPolicy().permits("x", "teleport")

    def test_rule_validates_verbs(self):
        with pytest.raises(ValueError):
            AccessPolicy().allow("x", "teleport")


class TestGuardedNamespace:
    def test_denied_invoke(self, pair):
        pair["beta"].register("c", Counter())
        policy = AccessPolicy().restrict()
        policy.trust_domain = False
        guarded = guard(pair["beta"].namespace, policy)
        with pytest.raises(AccessDeniedError):
            pair["alpha"].stub("c", location="beta").get()
        assert guarded.denials == 1

    def test_allowed_invoke(self, pair):
        pair["beta"].register("c", Counter())
        policy = AccessPolicy().restrict()
        policy.trust_domain = False
        policy.allow("alpha", "invoke")
        guard(pair["beta"].namespace, policy)
        assert pair["alpha"].stub("c", location="beta").get() == 0

    def test_denied_move_in(self, pair):
        pair["alpha"].register("c", Counter())
        policy = AccessPolicy().restrict()
        policy.trust_domain = False
        policy.allow("alpha", "invoke")  # but not move_in
        guard(pair["beta"].namespace, policy)
        from repro.errors import MageError

        with pytest.raises((AccessDeniedError, MageError)):
            pair["alpha"].namespace.move("c", "beta")
        # The object must still be safely at home.
        assert pair["alpha"].namespace.store.contains("c")

    def test_denied_move_out(self, pair):
        pair["beta"].register("c", Counter())
        policy = AccessPolicy().restrict()
        policy.trust_domain = False
        policy.allow("alpha", "invoke")
        guard(pair["beta"].namespace, policy)
        with pytest.raises(AccessDeniedError):
            pair["alpha"].namespace.move("c", "alpha", origin_hint="beta")

    def test_local_traffic_never_gated(self, pair):
        pair["alpha"].register("c", Counter())
        policy = AccessPolicy().restrict()
        policy.trust_domain = False
        guard(pair["alpha"].namespace, policy)
        # alpha's own finds/invokes keep working.
        assert pair["alpha"].find("c") == "alpha"
        assert pair["alpha"].stub("c", location="alpha").get() == 0

    def test_registry_lookups_not_gated(self, pair):
        """Naming stays open — only mobility verbs are access-controlled."""
        pair["beta"].register("c", Counter())
        policy = AccessPolicy().restrict()
        policy.trust_domain = False
        guard(pair["beta"].namespace, policy)
        ref = pair["alpha"].namespace.naming.lookup_ref("mage://beta/c")
        assert ref.node_id == "beta"
