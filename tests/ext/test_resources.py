"""Resource allocation (§7 future work): budgets and admission control."""

import pytest

from repro.errors import ResourceExhaustedError
from repro.ext.resources import OBJECT_SLOTS, ResourceBudget, meter
from repro.bench.workloads import Counter


class TestBudget:
    def test_admit_and_release(self):
        budget = ResourceBudget("alpha", {"slots": 2})
        budget.admit("slots")
        budget.admit("slots")
        assert budget.available("slots") == 0
        budget.release("slots")
        assert budget.available("slots") == 1

    def test_over_admission_raises(self):
        budget = ResourceBudget("alpha", {"slots": 1})
        budget.admit("slots")
        with pytest.raises(ResourceExhaustedError) as excinfo:
            budget.admit("slots")
        assert excinfo.value.node_id == "alpha"
        assert excinfo.value.available == 0

    def test_unknown_resource_is_unbounded(self):
        budget = ResourceBudget("alpha")
        for _ in range(100):
            budget.admit("anything")

    def test_release_floors_at_zero(self):
        budget = ResourceBudget("alpha", {"slots": 5})
        budget.release("slots", 10)
        assert budget.used("slots") == 0.0

    def test_set_capacity(self):
        budget = ResourceBudget("alpha")
        budget.set_capacity("mem", 100.0)
        assert budget.capacity("mem") == 100.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResourceBudget("alpha").set_capacity("mem", -1.0)

    def test_fractional_amounts(self):
        budget = ResourceBudget("alpha", {"mem": 1.0})
        budget.admit("mem", 0.6)
        with pytest.raises(ResourceExhaustedError):
            budget.admit("mem", 0.6)


class TestMeteredNamespace:
    def test_admits_until_full(self, trio):
        metered = meter(trio["gamma"].namespace, {OBJECT_SLOTS: 2})
        trio["alpha"].register("a", Counter())
        trio["alpha"].register("b", Counter())
        trio["alpha"].register("c", Counter())
        trio["alpha"].namespace.move("a", "gamma")
        trio["alpha"].namespace.move("b", "gamma")
        with pytest.raises(ResourceExhaustedError):
            trio["alpha"].namespace.move("c", "gamma")
        assert metered.rejections == 1
        # The rejected object stayed home, consistent state everywhere.
        assert trio["alpha"].namespace.store.contains("c")
        assert len(trio["gamma"].namespace.store) == 2

    def test_departures_free_slots(self, trio):
        meter(trio["gamma"].namespace, {OBJECT_SLOTS: 1})
        trio["alpha"].register("a", Counter())
        trio["alpha"].register("b", Counter())
        trio["alpha"].namespace.move("a", "gamma")
        with pytest.raises(ResourceExhaustedError):
            trio["alpha"].namespace.move("b", "gamma")
        # Move the tenant out; the slot opens up.
        trio["alpha"].namespace.move("a", "beta")
        trio["alpha"].namespace.move("b", "gamma")
        assert trio["gamma"].namespace.store.contains("b")

    def test_instantiate_is_metered(self, pair):
        meter(pair["beta"].namespace, {OBJECT_SLOTS: 1})
        pair["alpha"].register_class(Counter)
        server = pair["alpha"].namespace.server
        server.push_class("Counter", "beta")
        server.instantiate("Counter", "one", "beta")
        with pytest.raises(ResourceExhaustedError):
            server.instantiate("Counter", "two", "beta")

    def test_local_registration_not_metered(self, pair):
        """Admission control gates *migration*, not local residents."""
        meter(pair["beta"].namespace, {OBJECT_SLOTS: 0})
        pair["beta"].register("local-obj", Counter())
        assert pair["beta"].namespace.store.contains("local-obj")

    def test_failed_transfer_releases_slot(self, pair):
        metered = meter(pair["beta"].namespace, {OBJECT_SLOTS: 5})
        pair["alpha"].register("fixed", Counter(), pinned=True)
        from repro.errors import ObjectPinnedError

        with pytest.raises(ObjectPinnedError):
            pair["alpha"].namespace.move("fixed", "beta")
        assert metered.budget.used(OBJECT_SLOTS) == 0.0
