"""CLE versus Jini (§3.3): same component versus same interface.

"CLE differs from Jini in that it can refer to the same component across
invocations and namespaces.  Jini refers to the same functionality or
interface, but must destroy and create new objects when moving that
functionality from one namespace to another."
"""

import pytest

from repro.core.models import CLE
from repro.errors import NotBoundError
from repro.ext.jini import JiniClient, JiniLookupService, JiniProvider, relocate
from repro.bench.workloads import PrintServer


@pytest.fixture
def federation(trio):
    """A Jini lookup service over the standard trio."""
    lookup = JiniLookupService()
    providers = {
        node.node_id: JiniProvider(node.namespace, lookup) for node in trio
    }
    return trio, lookup, providers


class TestJiniModel:
    def test_discover_by_type(self, federation):
        trio, lookup, providers = federation
        providers["alpha"].offer("printing", PrintServer, "ps-alpha")
        client = JiniClient(trio["gamma"].namespace, lookup)
        receipt = client.service("printing").print_job("doc")
        assert receipt.startswith("ps-alpha:1")

    def test_undiscovered_type(self, federation):
        trio, lookup, _providers = federation
        client = JiniClient(trio["gamma"].namespace, lookup)
        with pytest.raises(NotBoundError):
            client.service("scanning")

    def test_relocation_reaches_the_new_provider(self, federation):
        trio, lookup, providers = federation
        old = providers["alpha"].offer("printing", PrintServer, "ps-alpha")
        relocate("printing", PrintServer, providers["alpha"], old,
                 providers["beta"], "ps-beta")
        client = JiniClient(trio["gamma"].namespace, lookup)
        receipt = client.service("printing").print_job("doc")
        assert receipt.startswith("ps-beta:1")
        # The old instance is gone from alpha.
        assert not trio["alpha"].namespace.store.contains(old)


class TestThePapersContrast:
    """The §3.3 sentence, as one test per system."""

    def test_jini_loses_state_across_relocation(self, federation):
        trio, lookup, providers = federation
        old = providers["alpha"].offer("printing", PrintServer, "ps")
        client = JiniClient(trio["gamma"].namespace, lookup)
        client.service("printing").print_job("job-1")
        client.service("printing").print_job("job-2")
        # Printer moves buildings: Jini destroys and re-creates.
        relocate("printing", PrintServer, providers["alpha"], old,
                 providers["beta"], "ps")
        assert client.service("printing").queue_length() == 0  # history gone

    def test_cle_keeps_the_same_component(self, trio):
        trio["alpha"].register("ps", PrintServer("ps"), shared=True)
        client = CLE("ps", runtime=trio["gamma"].namespace, origin="alpha")
        client.bind().print_job("job-1")
        client.bind().print_job("job-2")
        # The same relocation under MAGE: the component itself migrates.
        trio["alpha"].namespace.move("ps", "beta")
        assert client.bind().queue_length() == 2  # history survived

    def test_side_by_side(self, federation):
        """Both systems serve the interface after the move; only MAGE's
        component is the same object."""
        trio, lookup, providers = federation
        # Jini side.
        old = providers["alpha"].offer("printing", PrintServer, "jini-ps")
        jini_client = JiniClient(trio["gamma"].namespace, lookup)
        jini_client.service("printing").print_job("before")
        relocate("printing", PrintServer, providers["alpha"], old,
                 providers["beta"], "jini-ps")
        # MAGE side.
        trio["alpha"].register("mage-ps", PrintServer("mage-ps"), shared=True)
        cle = CLE("mage-ps", runtime=trio["gamma"].namespace, origin="alpha")
        cle.bind().print_job("before")
        trio["alpha"].namespace.move("mage-ps", "beta")
        # Both answer; their histories differ exactly as §3.3 says.
        assert jini_client.service("printing").queue_length() == 0
        assert cle.bind().queue_length() == 1
