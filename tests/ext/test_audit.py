"""The mobility audit trail."""

import pytest

from repro.core.models import COD, REV, RPC
from repro.errors import ImmobileObjectError
from repro.ext.audit import Auditor
from repro.bench.workloads import Counter


@pytest.fixture
def auditor():
    return Auditor()


class TestTrail:
    def test_successful_bind_recorded(self, pair, auditor):
        pair["alpha"].register("c", Counter())
        rev = auditor.watch(REV(None, "c", "beta",
                                runtime=pair["alpha"].namespace))
        rev.bind().increment()
        (entry,) = auditor.entries()
        assert entry.model == "REV"
        assert entry.action == "Default Behavior"
        assert entry.cloc == "beta"
        assert entry.error is None

    def test_coercions_are_queryable(self, pair, auditor):
        pair["alpha"].register("c", Counter())
        cod = auditor.watch(COD("c", runtime=pair["alpha"].namespace))
        cod.bind()  # local → coerces to LPC
        assert len(auditor.coercions()) == 1
        assert auditor.coercions()[0].effective_model == "LPC"

    def test_failures_are_recorded_and_reraised(self, pair, auditor):
        pair["alpha"].register("c", Counter())
        rpc = auditor.watch(RPC("c", target="beta",
                                runtime=pair["alpha"].namespace))
        with pytest.raises(ImmobileObjectError):
            rpc.bind()
        (entry,) = auditor.failures()
        assert entry.error == "ImmobileObjectError"

    def test_sequence_numbers_order_the_trail(self, pair, auditor):
        pair["alpha"].register("c", Counter())
        cod = auditor.watch(COD("c", runtime=pair["alpha"].namespace))
        cod.bind()
        cod.bind()
        seqs = [e.seq for e in auditor.entries()]
        assert seqs == sorted(seqs)
        assert len(auditor) == 2

    def test_one_auditor_many_attributes(self, trio, auditor):
        trio["alpha"].register("c", Counter(), shared=True)
        alpha = trio["alpha"].namespace
        rev = auditor.watch(REV(None, "c", "beta", runtime=alpha))
        cod = auditor.watch(COD("c", runtime=alpha, origin="beta"))
        rev.bind()
        cod.bind()
        models = [e.model for e in auditor.entries()]
        assert models == ["REV", "COD"]

    def test_report_renders_lines(self, pair, auditor):
        pair["alpha"].register("c", Counter())
        cod = auditor.watch(COD("c", runtime=pair["alpha"].namespace))
        cod.bind()
        report = auditor.report()
        assert "COD('c')" in report
        assert "[1]" in report

    def test_proxy_is_transparent(self, pair, auditor):
        pair["alpha"].register("c", Counter())
        rev = auditor.watch(REV(None, "c", "beta",
                                runtime=pair["alpha"].namespace))
        # Attribute API passes straight through the proxy.
        assert rev.MODEL == "REV"
        assert rev.get_target() == "beta"

    def test_locked_bracket_through_proxy(self, pair, auditor):
        pair["alpha"].register("geoData", Counter())
        cod = auditor.watch(COD("geoData", runtime=pair["beta"].namespace,
                                origin="alpha"))
        with cod.locked() as stub:
            assert stub.increment() == 1
