"""Ambient runtime context (the paper's implicit JVM)."""

import pytest

from repro.core.context import current_runtime, maybe_current_runtime, use_runtime
from repro.errors import ConfigurationError


class TestContext:
    def test_no_ambient_runtime_by_default(self):
        assert maybe_current_runtime() is None
        with pytest.raises(ConfigurationError):
            current_runtime()

    def test_with_block_sets_and_resets(self, pair):
        ns = pair["alpha"].namespace
        with use_runtime(ns) as active:
            assert active is ns
            assert current_runtime() is ns
        assert maybe_current_runtime() is None

    def test_nesting(self, pair):
        alpha = pair["alpha"].namespace
        beta = pair["beta"].namespace
        with use_runtime(alpha):
            with use_runtime(beta):
                assert current_runtime() is beta
            assert current_runtime() is alpha

    def test_reset_on_exception(self, pair):
        ns = pair["alpha"].namespace
        with pytest.raises(RuntimeError):
            with use_runtime(ns):
                raise RuntimeError("boom")
        assert maybe_current_runtime() is None

    def test_node_activate_sugar(self, pair):
        with pair["alpha"].activate():
            assert current_runtime() is pair["alpha"].namespace

    def test_attributes_pick_up_ambient_runtime(self, pair):
        from repro.core.models import CLE
        from repro.bench.workloads import Counter

        pair["beta"].register("c", Counter())
        with pair["alpha"].activate():
            cle = CLE("c", origin="beta")
        assert cle.runtime is pair["alpha"].namespace
        assert cle.bind().increment() == 1

    def test_threads_do_not_inherit_ambient_runtime(self, pair):
        """Context variables are per-thread-of-execution: a worker thread
        spawned inside the block sees no ambient runtime."""
        import threading

        observed = []

        def probe():
            observed.append(maybe_current_runtime())

        with pair["alpha"].activate():
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert observed == [None]
