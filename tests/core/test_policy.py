"""User-defined attributes: LoadBalancing, Combined, Restricted."""

import pytest

from repro.core.models import COD, MAgent, REV
from repro.core.policy import Combined, LoadBalancing, Restricted
from repro.errors import TargetRestrictedError
from repro.bench.workloads import Counter


class TestLoadBalancing:
    def test_stays_put_under_threshold(self, trio):
        trio["alpha"].register("svc", Counter())
        trio["alpha"].set_load(50.0)
        policy = LoadBalancing(
            "svc", candidates=["beta", "gamma"], threshold=100.0,
            runtime=trio["alpha"].namespace,
        )
        policy.bind()
        assert policy.cloc == "alpha"
        assert policy.migrations == 0

    def test_migrates_when_overloaded(self, trio):
        """§3.1's policy: ``if (cloc.getLoad() > 100) ... send(target)``."""
        trio["alpha"].register("svc", Counter(3))
        trio["alpha"].set_load(150.0)
        trio["beta"].set_load(80.0)
        trio["gamma"].set_load(10.0)
        policy = LoadBalancing(
            "svc", candidates=["beta", "gamma"], threshold=100.0,
            runtime=trio["alpha"].namespace,
        )
        stub = policy.bind()
        assert policy.cloc == "gamma"  # least loaded candidate
        assert policy.migrations == 1
        assert stub.get() == 3

    def test_follows_load_shifts(self, trio):
        trio["alpha"].register("svc", Counter())
        trio["alpha"].set_load(150.0)
        trio["beta"].set_load(0.0)
        trio["gamma"].set_load(999.0)
        policy = LoadBalancing(
            "svc", candidates=["beta", "gamma"], threshold=100.0,
            runtime=trio["alpha"].namespace,
        )
        policy.bind()
        assert policy.cloc == "beta"
        # beta heats up, gamma cools down: next bind moves on.
        trio["beta"].set_load(500.0)
        trio["gamma"].set_load(5.0)
        policy.bind()
        assert policy.cloc == "gamma"
        assert policy.migrations == 2

    def test_needs_candidates(self, pair):
        with pytest.raises(TargetRestrictedError):
            LoadBalancing("svc", candidates=[], runtime=pair["alpha"].namespace)


class TestCombined:
    def test_chooser_routes_between_attributes(self, trio):
        """§3.6's CombinedMA: one attribute, several models inside."""
        trio["alpha"].register("geoData", Counter(), shared=True)
        alpha_ns = trio["alpha"].namespace
        phase = {"current": "survey"}

        inner = {
            "survey": REV(None, "geoData", "beta", runtime=alpha_ns),
            "retrieve": COD("geoData", runtime=alpha_ns, origin="beta"),
        }
        combined = Combined(
            "geoData", inner,
            chooser=lambda attr: phase["current"],
            runtime=alpha_ns,
        )
        stub = combined.bind()
        stub.increment()
        assert combined.cloc == "beta"
        phase["current"] = "retrieve"
        stub = combined.bind()
        assert stub.get() == 1
        assert combined.cloc == "alpha"
        assert combined.history == ["survey", "retrieve"]

    def test_unknown_choice_rejected(self, pair):
        pair["alpha"].register("x", Counter())
        combined = Combined(
            "x", {"only": COD("x", runtime=pair["alpha"].namespace)},
            chooser=lambda attr: "other",
            runtime=pair["alpha"].namespace,
        )
        with pytest.raises(TargetRestrictedError):
            combined.bind()

    def test_needs_inner_attributes(self, pair):
        with pytest.raises(TargetRestrictedError):
            Combined("x", {}, chooser=lambda a: "y",
                     runtime=pair["alpha"].namespace)


class TestRestricted:
    def test_allowed_target_passes(self, pair):
        pair["alpha"].register("c", Counter())
        rev = REV(None, "c", "beta", runtime=pair["alpha"].namespace)
        restricted = Restricted(rev, allowed_targets=["beta"])
        assert restricted.bind().increment() == 1

    def test_forbidden_target_refused(self, trio):
        trio["alpha"].register("c", Counter())
        rev = REV(None, "c", "gamma", runtime=trio["alpha"].namespace)
        restricted = Restricted(rev, allowed_targets=["beta"])
        with pytest.raises(TargetRestrictedError):
            restricted.bind()
        # And the component did not move.
        assert trio["alpha"].namespace.store.contains("c")

    def test_location_restriction(self, trio):
        """§3.3: restrict 'current location … to subsets of the available
        hosts'."""
        trio["gamma"].register("c", Counter())
        ma = MAgent("c", "beta", runtime=trio["alpha"].namespace,
                    origin="gamma")
        restricted = Restricted(
            ma, allowed_locations=["alpha", "beta"],
        )
        with pytest.raises(TargetRestrictedError):
            restricted.bind()

    def test_unrestricted_dimensions_pass(self, pair):
        pair["alpha"].register("c", Counter())
        rev = REV(None, "c", "beta", runtime=pair["alpha"].namespace)
        restricted = Restricted(rev)  # no restrictions at all
        assert restricted.bind().increment() == 1
