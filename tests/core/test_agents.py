"""Multi-hop asynchronous agents (§3.5)."""

import pytest

from repro.core.agents import Agent, agent_manager_for
from repro.errors import LockError
from repro.bench.workloads import Counter, ProbeAgent


class Collector(Agent):
    """Agent that gathers per-node load readings along its tour."""

    def __init__(self):
        super().__init__()
        self.loads: dict[str, float] = {}
        self.done = False

    def on_arrival(self, ctx):
        super().on_arrival(ctx)
        self.loads[ctx.node_id] = ctx.query_load()

    def on_complete(self, ctx):
        self.done = True


class Homing(Agent):
    """Agent that steers itself: always returns to base after one stop."""

    def __init__(self, base):
        super().__init__()
        self.base = base
        self.steered = False

    def on_arrival(self, ctx):
        super().on_arrival(ctx)
        if ctx.node_id != self.base and not self.steered:
            self.steered = True
            ctx.go(self.base)


class Quitter(Agent):
    """Agent that abandons its itinerary at the second stop."""

    def on_arrival(self, ctx):
        super().on_arrival(ctx)
        if len(self.visited) == 2:
            ctx.stay()


class TestTours:
    def test_full_itinerary(self, quad):
        agent = Collector()
        quad["beta"].set_load(42.0)
        quad["alpha"].agents.launch(agent, "collector",
                                    ("beta", "gamma", "delta"))
        quad.quiesce()
        final = quad["delta"].namespace.store.get("collector")
        assert final.visited == ["beta", "gamma", "delta"]
        assert final.loads["beta"] == 42.0
        assert final.done is True

    def test_agent_state_travels(self, trio):
        agent = ProbeAgent()
        trio["alpha"].agents.launch(agent, "probe", ("beta", "gamma"))
        trio.quiesce()
        report = trio["gamma"].stub("probe", location="gamma").report()
        assert report["visited"] == ["beta", "gamma"]
        assert report["completed"] is True

    def test_registries_track_the_tour(self, trio):
        trio["alpha"].agents.launch(Collector(), "tracked", ("beta", "gamma"))
        trio.quiesce()
        assert trio["alpha"].namespace.registry.forwarding_hint("tracked") == "beta"
        assert trio["beta"].namespace.registry.forwarding_hint("tracked") == "gamma"
        assert trio["gamma"].namespace.store.contains("tracked")

    def test_empty_itinerary_is_noop(self, pair):
        pair["alpha"].agents.launch(Collector(), "idle", ())
        pair.quiesce()
        assert pair["alpha"].namespace.store.contains("idle")

    def test_hop_to_self_continues_locally(self, pair):
        agent = Collector()
        pair["alpha"].agents.launch(agent, "selfhop", ("alpha", "beta"))
        pair.quiesce()
        final = pair["beta"].namespace.store.get("selfhop")
        assert final.visited == ["alpha", "beta"]


class TestSteering:
    def test_go_overrides_itinerary(self, trio):
        agent = Homing("alpha")
        trio["alpha"].agents.launch(agent, "homing", ("beta",))
        trio.quiesce()
        final = trio["alpha"].namespace.store.get("homing")
        assert final.visited == ["beta", "alpha"]

    def test_stay_abandons_remaining_stops(self, quad):
        agent = Quitter()
        quad["alpha"].agents.launch(agent, "quitter",
                                    ("beta", "gamma", "delta"))
        quad.quiesce()
        assert quad["gamma"].namespace.store.contains("quitter")
        assert not quad["delta"].namespace.store.contains("quitter")


class TestRemoteLaunch:
    def test_send_through_remote_object(self, trio):
        """A tour can be started for an object hosted elsewhere."""
        trio["beta"].register("worker", Counter(), shared=False)
        manager = agent_manager_for(trio["alpha"].namespace)
        manager.send_through("worker", ("gamma",), origin_hint="beta")
        trio.quiesce()
        assert trio["gamma"].namespace.store.contains("worker")

    def test_contended_object_needs_move_lock(self, pair):
        pair["alpha"].register("busy", Counter())
        grant = pair["alpha"].namespace.lock("busy", "alpha")  # stay holder
        with pytest.raises(LockError):
            pair["alpha"].agents.start_tour("busy", ("beta",))
        pair["alpha"].namespace.unlock(grant)

    def test_async_tours_complete(self, make_cluster):
        """The real asynchronous path (thread-pool casts)."""
        cluster = make_cluster(["alpha", "beta", "gamma"],
                               synchronous_casts=False)
        cluster["alpha"].agents.launch(Collector(), "async-agent",
                                       ("beta", "gamma"))
        cluster.quiesce(timeout_s=10.0)
        final = cluster["gamma"].namespace.store.get("async-agent")
        assert final.visited == ["beta", "gamma"]


class TestDuckTyping:
    def test_hookless_objects_can_tour(self, pair):
        """Any component can ride the agent protocol; hooks are optional."""
        pair["alpha"].register("plain", Counter(9), shared=False)
        pair["alpha"].agents.start_tour("plain", ("beta",))
        pair.quiesce()
        assert pair["beta"].stub("plain", location="beta").get() == 9
