"""Model edge cases: rebinding, interface restriction, kwargs, composition."""

import pytest

from repro.core.factory import FactoryMode
from repro.core.models import CLE, COD, GREV, MAgent, REV
from repro.core.policy import Combined, LoadBalancing, Restricted
from repro.bench.workloads import Counter, GeoDataFilterImpl


class TestRebinding:
    """Figure 4's ``bind(String n)`` across the model family."""

    def test_cle_rebinds_between_components(self, pair):
        pair["alpha"].register("one", Counter(1))
        pair["beta"].register("two", Counter(2))
        cle = CLE("one", runtime=pair["alpha"].namespace)
        assert cle.bind().get() == 1
        # Rebind needs a resolvable name: "two" lives on beta, so the
        # origin must be supplied (or known) — here via local knowledge.
        pair["alpha"].find("two", origin_hint="beta")
        assert cle.bind("two").get() == 2

    def test_grev_rebinding_moves_the_new_component(self, trio):
        trio["alpha"].register("a", Counter())
        trio["alpha"].register("b", Counter())
        grev = GREV("a", "gamma", runtime=trio["beta"].namespace,
                    origin="alpha")
        grev.bind()
        assert trio["gamma"].namespace.store.contains("a")
        grev.bind("b")
        assert trio["gamma"].namespace.store.contains("b")


class TestInterfaceRestriction:
    def test_runtime_stub_with_interface(self, pair):
        from repro.rmi.stub import interface_methods

        class GeoDataFilter:
            def filter_data(self):
                ...

            def process_data(self):
                ...

        pair["beta"].register("geo", GeoDataFilterImpl())
        stub = pair["alpha"].namespace.stub(
            "geo", location="beta",
            methods=interface_methods(GeoDataFilter),
        )
        stub.filter_data()  # allowed by the interface
        with pytest.raises(AttributeError):
            stub.ingest([1.0])  # implementation detail, not on the interface


class TestConstructorPlumbing:
    def test_rev_kwargs(self, pair):
        pair["alpha"].register_class(Counter)
        rev = REV("Counter", "k", "beta", ctor_kwargs={"start": 41},
                  runtime=pair["alpha"].namespace)
        assert rev.bind().increment() == 42

    def test_cod_kwargs(self, pair):
        pair["beta"].register_class(GeoDataFilterImpl)
        cod = COD("g", class_name="GeoDataFilterImpl", source="beta",
                  ctor_kwargs={"threshold": 0.9},
                  runtime=pair["alpha"].namespace)
        stub = cod.bind()
        stub.ingest([0.5, 0.95])
        assert stub.filter_data() == 1

    def test_private_deployment(self, pair):
        pair["alpha"].register_class(Counter)
        rev = REV("Counter", "priv", "beta", mode=FactoryMode.SINGLE_USE,
                  shared=False, runtime=pair["alpha"].namespace)
        rev.bind()
        assert pair["beta"].namespace.store.is_shared("priv") is False


class TestComposition:
    def test_restricted_combined(self, trio):
        """Policies compose: a Combined inside a Restricted."""
        trio["alpha"].register("c", Counter())
        alpha = trio["alpha"].namespace
        combined = Combined(
            "c",
            {
                "go": REV(None, "c", "beta", runtime=alpha),
                "far": REV(None, "c", "gamma", runtime=alpha),
            },
            chooser=lambda attr: "far",
            runtime=alpha,
        )
        fenced = Restricted(combined, allowed_targets=None,
                            allowed_locations=["alpha", "beta"])
        stub = fenced.bind()  # "far" moves it to gamma — allowed (location
        assert stub.increment() == 1  # restriction checks the *current* spot)
        # Now the component sits on gamma, outside the allowed locations:
        from repro.errors import TargetRestrictedError

        with pytest.raises(TargetRestrictedError):
            fenced.bind()

    def test_load_balancing_inside_combined(self, trio):
        trio["alpha"].register("svc", Counter())
        trio["alpha"].set_load(500.0)
        trio["beta"].set_load(5.0)
        trio["gamma"].set_load(50.0)
        alpha = trio["alpha"].namespace
        combined = Combined(
            "svc",
            {"balance": LoadBalancing("svc", candidates=["beta", "gamma"],
                                      threshold=100.0, runtime=alpha)},
            chooser=lambda attr: "balance",
            runtime=alpha,
        )
        combined.bind()
        assert combined.cloc == "beta"


class TestMAgentEdges:
    def test_deploy_then_object_mode_on_same_attribute(self, trio):
        """After a deploy-mode bind creates the agent, later binds of the
        same attribute move the existing object."""
        trio["alpha"].register_class(Counter)
        ma = MAgent("roam", "beta", class_name="Counter",
                    runtime=trio["alpha"].namespace)
        ma.bind()
        assert trio["beta"].namespace.store.contains("roam")
        ma.target = "gamma"
        ma.bind()
        assert trio["gamma"].namespace.store.contains("roam")
        assert not trio["beta"].namespace.store.contains("roam")

    def test_itinerary_with_locked_start(self, trio):
        trio["alpha"].register("tour", Counter(), shared=True)
        ma = MAgent("tour", "gamma", itinerary=("beta",),
                    runtime=trio["alpha"].namespace)
        with ma.locked() as stub:
            pass  # the locked bracket held the move lock through the bind
        trio.quiesce()
        assert trio["gamma"].namespace.store.contains("tour")
