"""The mobility-coercion engine (Table 2, §3.4)."""

import pytest

from repro.core.coercion import (
    Action,
    Placement,
    TABLE2,
    TABLE2_MODELS,
    classify,
    coerce,
    effective_model,
)
from repro.errors import CoercionError


class TestClassify:
    def test_local_at_target(self):
        assert classify("here", "here", "here") is Placement.LOCAL_AT_TARGET

    def test_local_not_at_target(self):
        assert classify("here", "here", "there") is Placement.LOCAL_NOT_AT_TARGET

    def test_remote_at_target(self):
        assert classify("there", "here", "there") is Placement.REMOTE_AT_TARGET

    def test_remote_not_at_target(self):
        assert (
            classify("elsewhere", "here", "there")
            is Placement.REMOTE_NOT_AT_TARGET
        )

    def test_unspecified_target_is_always_at_target(self):
        """CLE's target is 'the set of all namespaces'."""
        assert classify("here", "here", None) is Placement.LOCAL_AT_TARGET
        assert classify("there", "here", None) is Placement.REMOTE_AT_TARGET


class TestTable2:
    """Cell-for-cell checks against the paper's Table 2."""

    @pytest.mark.parametrize("model", ["MA", "REV"])
    def test_ma_rev_local_default(self, model):
        assert coerce(model, Placement.LOCAL_NOT_AT_TARGET) is Action.DEFAULT

    @pytest.mark.parametrize("model", ["MA", "REV"])
    def test_ma_rev_at_target_coerces_to_rpc(self, model):
        assert coerce(model, Placement.REMOTE_AT_TARGET) is Action.COERCE_RPC

    @pytest.mark.parametrize("model", ["MA", "REV"])
    def test_ma_rev_not_at_target_default(self, model):
        assert coerce(model, Placement.REMOTE_NOT_AT_TARGET) is Action.DEFAULT

    def test_cod_local_coerces_to_lpc(self):
        assert coerce("COD", Placement.LOCAL_AT_TARGET) is Action.COERCE_LPC

    def test_cod_remote_at_target_is_na(self):
        """COD's target is the caller's namespace; 'remote at target' is
        the paper's n/a cell."""
        assert coerce("COD", Placement.REMOTE_AT_TARGET) is Action.NOT_APPLICABLE

    def test_cod_remote_default(self):
        assert coerce("COD", Placement.REMOTE_NOT_AT_TARGET) is Action.DEFAULT

    def test_rpc_local_raises(self):
        assert coerce("RPC", Placement.LOCAL_NOT_AT_TARGET) is Action.RAISE

    def test_rpc_at_target_default(self):
        assert coerce("RPC", Placement.REMOTE_AT_TARGET) is Action.DEFAULT

    def test_rpc_not_at_target_raises(self):
        assert coerce("RPC", Placement.REMOTE_NOT_AT_TARGET) is Action.RAISE

    def test_cle_is_always_default(self):
        for placement in Placement:
            assert coerce("CLE", placement) is Action.DEFAULT

    def test_unknown_model(self):
        with pytest.raises(CoercionError):
            coerce("TELEPORT", Placement.LOCAL_AT_TARGET)


class TestTotality:
    def test_every_paper_model_covers_every_placement(self):
        for model in TABLE2_MODELS:
            for placement in Placement:
                assert (model, placement) in TABLE2

    def test_extended_models_covered_too(self):
        for model in ("GREV", "LPC"):
            for placement in Placement:
                assert (model, placement) in TABLE2


class TestEffectiveModel:
    def test_default_keeps_model(self):
        assert effective_model("REV", Action.DEFAULT) == "REV"

    def test_rpc_coercion(self):
        assert effective_model("MA", Action.COERCE_RPC) == "RPC"

    def test_lpc_coercion(self):
        assert effective_model("COD", Action.COERCE_LPC) == "LPC"
