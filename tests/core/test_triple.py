"""The <Location, Target, Moves> design space (Table 1, §3.2)."""

from repro.core.triple import (
    CANONICAL_TRIPLES,
    Locus,
    MobilityTriple,
    TABLE1_ORDER,
    design_space,
    model_for,
    models_covering,
)


class TestTable1:
    def test_paper_rows_exactly(self):
        """Table 1, cell for cell."""
        expected = {
            "MA": ("remote", "remote", "yes"),
            "REV": ("local", "remote", "yes"),
            "RPC": ("remote", "remote", "no"),
            "CLE": ("not specified", "not specified", "no"),
            "COD": ("remote", "local", "yes"),
            "LPC": ("local", "local", "no"),
        }
        for model, row in expected.items():
            assert CANONICAL_TRIPLES[model].row() == row

    def test_table_order_matches_paper(self):
        assert TABLE1_ORDER == ("MA", "REV", "RPC", "CLE", "COD", "LPC")

    def test_classical_triples_are_unique(self):
        """The triple 'uniquely specifies all distributed programming
        models discussed in this paper'."""
        classical = [CANONICAL_TRIPLES[m] for m in TABLE1_ORDER]
        assert len(set(classical)) == len(classical)

    def test_grev_is_the_moving_wildcard(self):
        grev = CANONICAL_TRIPLES["GREV"]
        assert grev.location is Locus.UNSPECIFIED
        assert grev.target is Locus.UNSPECIFIED
        assert grev.moves is True


class TestDesignSpace:
    def test_full_enumeration(self):
        space = design_space()
        assert len(space) == 18  # 3 x 3 x 2
        assert len(set(space)) == 18

    def test_model_for_exact_matches(self):
        assert model_for(MobilityTriple(Locus.REMOTE, Locus.LOCAL, True)) == "COD"
        assert model_for(MobilityTriple(Locus.LOCAL, Locus.REMOTE, True)) == "REV"

    def test_model_for_unnamed_points(self):
        # local -> local with movement: no classical model names this.
        assert model_for(MobilityTriple(Locus.LOCAL, Locus.LOCAL, True)) is None

    def test_str_rendering(self):
        triple = MobilityTriple(Locus.REMOTE, Locus.LOCAL, True)
        assert str(triple) == "<remote, local, yes>"


class TestCoverage:
    def test_grev_covers_every_moving_concrete_point(self):
        """§3.3: GREV 'applies to a wider array of component distributions
        than either REV or COD alone'."""
        for location in (Locus.LOCAL, Locus.REMOTE):
            for target in (Locus.LOCAL, Locus.REMOTE):
                triple = MobilityTriple(location, target, True)
                assert "GREV" in models_covering(triple)

    def test_cle_covers_every_static_concrete_point(self):
        for location in (Locus.LOCAL, Locus.REMOTE):
            for target in (Locus.LOCAL, Locus.REMOTE):
                triple = MobilityTriple(location, target, False)
                assert "CLE" in models_covering(triple)

    def test_rev_covers_only_its_own_point(self):
        assert "REV" in models_covering(
            MobilityTriple(Locus.LOCAL, Locus.REMOTE, True)
        )
        assert "REV" not in models_covering(
            MobilityTriple(Locus.REMOTE, Locus.REMOTE, True)
        )
