"""GREV (§3.3) and the mobile-agent attribute (§3.5)."""

import pytest

from repro.core.coercion import Action
from repro.core.models import GREV, MAgent
from repro.errors import ComponentNotFoundError
from repro.bench.workloads import Counter


class TestGREV:
    def test_moves_from_anywhere_to_anywhere(self, quad):
        """Figure 2: P (alpha) asks C to move from D (gamma) to B (beta)."""
        quad["gamma"].register("C", Counter())
        grev = GREV("C", "beta", runtime=quad["alpha"].namespace,
                    origin="gamma")
        stub = grev.bind()
        assert stub.ref.node_id == "beta"
        assert stub.increment() == 1
        assert quad["beta"].namespace.store.contains("C")

    def test_local_component_to_remote_target(self, pair):
        """GREV subsumes REV."""
        pair["alpha"].register("C", Counter())
        grev = GREV("C", "beta", runtime=pair["alpha"].namespace)
        assert grev.bind().ref.node_id == "beta"

    def test_remote_component_to_local_target(self, pair):
        """GREV subsumes COD."""
        pair["beta"].register("C", Counter())
        grev = GREV("C", "alpha", runtime=pair["alpha"].namespace,
                    origin="beta")
        assert grev.bind().ref.node_id == "alpha"
        assert pair["alpha"].namespace.store.contains("C")

    def test_at_target_coerces_to_rpc(self, pair):
        pair["beta"].register("C", Counter())
        grev = GREV("C", "beta", runtime=pair["alpha"].namespace,
                    origin="beta")
        grev.bind()
        assert grev.last_outcome.action is Action.COERCE_RPC

    def test_well_suited_to_constantly_moving_components(self, trio):
        """Each bind re-verifies the location, so GREV keeps working as
        the component wanders."""
        trio["alpha"].register("C", Counter())
        grev = GREV("C", "gamma", runtime=trio["beta"].namespace,
                    origin="alpha")
        grev.bind()
        trio["gamma"].namespace.move("C", "alpha")  # someone moves it away
        stub = grev.bind()  # GREV drags it back to gamma
        assert stub.ref.node_id == "gamma"
        assert trio["gamma"].namespace.store.contains("C")

    def test_missing_component(self, pair):
        grev = GREV("ghost", "beta", runtime=pair["alpha"].namespace,
                    origin="beta")
        with pytest.raises(ComponentNotFoundError):
            grev.bind()


class TestMAgentObjectMode:
    def test_moves_object_to_target(self, pair):
        pair["alpha"].register("agent", Counter(1))
        ma = MAgent("agent", "beta", runtime=pair["alpha"].namespace)
        stub = ma.bind()
        assert stub.increment() == 2
        assert pair["beta"].namespace.store.contains("agent")

    def test_at_target_coerces_to_rpc(self, pair):
        pair["beta"].register("agent", Counter())
        ma = MAgent("agent", "beta", runtime=pair["alpha"].namespace,
                    origin="beta")
        ma.bind()
        assert ma.last_outcome.action is Action.COERCE_RPC

    def test_multi_hop_itinerary(self, quad):
        """MA is multi-hop: the object visits every itinerary stop."""
        quad["alpha"].register("agent", Counter(), shared=False)
        ma = MAgent("agent", "delta", itinerary=("beta", "gamma"),
                    runtime=quad["alpha"].namespace)
        ma.bind()
        quad.quiesce()
        assert quad["delta"].namespace.store.contains("agent")
        # The registries along the way watched it pass through.
        assert quad["beta"].namespace.registry.forwarding_hint("agent") == "gamma"
        assert quad["gamma"].namespace.registry.forwarding_hint("agent") == "delta"

    def test_missing_object(self, pair):
        ma = MAgent("ghost", "beta", runtime=pair["alpha"].namespace)
        with pytest.raises(ComponentNotFoundError):
            ma.bind()


class TestMAgentDeployMode:
    def test_deploys_class_to_target(self, pair):
        pair["alpha"].register_class(Counter)
        ma = MAgent("worker", "beta", class_name="Counter",
                    ctor_args=(5,), runtime=pair["alpha"].namespace)
        stub = ma.bind()
        assert stub.ref.node_id == "beta"
        assert stub.increment() == 6

    def test_send_is_fire_and_forget(self, pair):
        """Table 3's MA semantics: the result stays at the remote host."""
        pair["alpha"].register_class(Counter)
        ma = MAgent("worker", "beta", class_name="Counter",
                    runtime=pair["alpha"].namespace)
        ma.bind()
        assert ma.send("increment") is None
        pair.quiesce()
        # The effect happened remotely even though nothing came back.
        assert pair["beta"].stub("worker", location="beta").get() == 1

    def test_rev_vs_ma_message_asymmetry(self, pair):
        """§3.5: 'REV is single hop and synchronous, while MA is multi-hop
        and asynchronous' — visible as the one-way INVOKE on the wire."""
        pair["alpha"].register_class(Counter)
        ma = MAgent("worker2", "beta", class_name="Counter",
                    runtime=pair["alpha"].namespace)
        ma.bind()
        before = len(pair.trace)
        ma.send("increment")
        pair.quiesce()
        new_events = pair.trace.events()[before:]
        kinds = [e.kind for e in new_events if not e.local]
        assert kinds == ["INVOKE"]  # no REPLY(INVOKE): the result stayed
