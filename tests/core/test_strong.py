"""Simulated strong migration: resumable state-machine agents."""

import pytest

from repro.core.strong import ResumableAgent, launch_resumable
from repro.errors import MageError


class Accumulator(ResumableAgent):
    """Visits a fixed plan of namespaces, accumulating loads, then sums."""

    def __init__(self, plan):
        super().__init__()
        self.plan = list(plan)
        self.samples = []
        self.total = None

    def stage_start(self, ctx):
        return self.goto("collect", hop=self.plan[0])

    def stage_collect(self, ctx):
        self.samples.append(ctx.query_load())
        nxt = len(self.samples)
        if nxt < len(self.plan):
            return self.goto("collect", hop=self.plan[nxt])
        return self.goto("summarize")

    def stage_summarize(self, ctx):
        self.total = sum(self.samples)
        return self.finish()


class BadReturn(ResumableAgent):
    def stage_start(self, ctx):
        return "not an instruction"


class Runaway(ResumableAgent):
    MAX_STAGES_PER_VISIT = 10

    def stage_start(self, ctx):
        return self.goto("start")


class TestResumableProgram:
    def test_resumes_mid_program_across_hops(self, quad):
        """The defining property: the agent's 'program counter' survives
        migration — collect resumes where it stopped, at the next node."""
        for i, node in enumerate(("beta", "gamma", "delta")):
            quad[node].set_load(float(10 * (i + 1)))
        agent = Accumulator(["beta", "gamma", "delta"])
        launch_resumable(quad["alpha"], agent, "acc")
        quad.quiesce()
        final = quad["delta"].namespace.store.get("acc")
        assert final.samples == [10.0, 20.0, 30.0]
        assert final.total == 60.0
        assert final.finished is True
        # It ended where the program completed (delta), untouched after.
        assert final.visited == ["alpha", "beta", "gamma", "delta"]

    def test_single_namespace_program(self, pair):
        class Local(ResumableAgent):
            def __init__(self):
                super().__init__()
                self.steps = []

            def stage_start(self, ctx):
                self.steps.append("a")
                return self.goto("second")

            def stage_second(self, ctx):
                self.steps.append("b")
                return self.finish()

        agent = Local()
        launch_resumable(pair["alpha"], agent, "local")
        pair.quiesce()
        final = pair["alpha"].namespace.store.get("local")
        assert final.steps == ["a", "b"]

    def test_on_finished_hook(self, pair):
        class Noting(ResumableAgent):
            def __init__(self):
                super().__init__()
                self.note = None

            def stage_start(self, ctx):
                return self.finish()

            def on_finished(self, ctx):
                self.note = f"done at {ctx.node_id}"

        agent = Noting()
        launch_resumable(pair["alpha"], agent, "noting", first_hop="beta")
        pair.quiesce()
        assert pair["beta"].namespace.store.get("noting").note == "done at beta"

    def test_stage_introspection(self):
        agent = Accumulator([])
        assert agent.stages() == ["collect", "start", "summarize"]

    def test_goto_unknown_stage_fails_fast(self):
        agent = Accumulator([])
        with pytest.raises(MageError, match="no stage"):
            agent.goto("nonexistent")


class TestSchedulerGuards:
    def test_bad_return_type_is_reported(self, pair):
        agent = BadReturn()
        with pytest.raises(MageError, match="must return"):
            launch_resumable(pair["alpha"], agent, "bad")

    def test_runaway_loop_is_bounded(self, pair):
        agent = Runaway()
        with pytest.raises(MageError, match="runaway"):
            launch_resumable(pair["alpha"], agent, "runaway")

    def test_finished_agent_does_not_rerun(self, pair):
        class Once(ResumableAgent):
            def __init__(self):
                super().__init__()
                self.runs = 0

            def stage_start(self, ctx):
                self.runs += 1
                return self.finish()

        agent = Once()
        launch_resumable(pair["alpha"], agent, "once")
        pair.quiesce()
        # Move the finished agent around: its program must not restart.
        pair["alpha"].agents.start_tour("once", ("beta",))
        pair.quiesce()
        assert pair["beta"].namespace.store.get("once").runs == 1
