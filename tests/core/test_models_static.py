"""LPC, RPC and CLE: the non-moving models."""

import pytest

from repro.core.models import CLE, LPC, RPC
from repro.core.coercion import Action
from repro.errors import (
    CoercionError,
    ComponentNotFoundError,
    ImmobileObjectError,
)
from repro.bench.workloads import Counter


class TestLPC:
    def test_local_invocation(self, pair):
        pair["alpha"].register("c", Counter(1))
        lpc = LPC("c", runtime=pair["alpha"].namespace)
        assert lpc.bind().increment() == 2
        assert lpc.last_outcome.action is Action.DEFAULT

    def test_remote_component_rejected(self, pair):
        pair["beta"].register("c", Counter())
        lpc = LPC("c", runtime=pair["alpha"].namespace, origin="beta")
        with pytest.raises(CoercionError):
            lpc.bind()

    def test_missing_component(self, pair):
        lpc = LPC("ghost", runtime=pair["alpha"].namespace)
        with pytest.raises(ComponentNotFoundError):
            lpc.bind()

    def test_target_is_always_here(self, pair):
        lpc = LPC("x", runtime=pair["alpha"].namespace)
        assert lpc.get_target() == "alpha"


class TestRPC:
    def test_invocation_at_target(self, pair):
        pair["beta"].register("c", Counter(10))
        rpc = RPC("c", target="beta", runtime=pair["alpha"].namespace,
                  origin="beta")
        assert rpc.bind().increment() == 11
        assert rpc.last_outcome.action is Action.DEFAULT

    def test_target_defaults_to_found_location(self, pair):
        pair["beta"].register("c", Counter())
        rpc = RPC("c", runtime=pair["alpha"].namespace, origin="beta")
        assert rpc.target == "beta"

    def test_exception_when_component_moved(self, trio):
        """'MAGE RPC throws an exception if it does not find its object on
        its target.'  RPC stays a thin wrapper, so a concurrent move
        surfaces at the intercepted invocation."""
        trio["beta"].register("c", Counter())
        rpc = RPC("c", target="beta", runtime=trio["alpha"].namespace,
                  origin="beta")
        rpc.bind().increment()  # fine: at target
        trio["beta"].namespace.move("c", "gamma")
        with pytest.raises(ImmobileObjectError) as excinfo:
            rpc.bind().increment()
        assert excinfo.value.expected == "beta"
        assert excinfo.value.actual == "gamma"

    def test_exception_at_bind_once_staleness_is_known(self, trio):
        """Once the local registry knows the true location, bind itself
        raises (Table 2's bind-time row)."""
        trio["beta"].register("c", Counter())
        rpc = RPC("c", target="beta", runtime=trio["alpha"].namespace,
                  origin="beta")
        trio["beta"].namespace.move("c", "gamma")
        trio["alpha"].find("c", verify=True)  # refresh alpha's table
        with pytest.raises(ImmobileObjectError):
            rpc.bind()

    def test_exception_when_component_local(self, pair):
        """Table 2: RPC's Local column is 'Exception thrown'."""
        pair["alpha"].register("c", Counter())
        rpc = RPC("c", target="beta", runtime=pair["alpha"].namespace)
        with pytest.raises(ImmobileObjectError):
            rpc.bind()

    def test_missing_component(self, pair):
        rpc = RPC("ghost", target="beta", runtime=pair["alpha"].namespace)
        with pytest.raises(ImmobileObjectError):
            rpc.bind()

    def test_denotes_immobile_object(self, pair):
        """The paper provides RPC 'so that a programmer could use it to
        denote an immobile object' — repeated binds keep working while the
        object stays put."""
        pair["beta"].register("c", Counter())
        rpc = RPC("c", target="beta", runtime=pair["alpha"].namespace,
                  origin="beta")
        for expected in (1, 2, 3):
            assert rpc.bind().increment() == expected


class TestCLE:
    def test_invokes_wherever_component_is(self, trio):
        trio["alpha"].register("c", Counter())
        cle = CLE("c", runtime=trio["gamma"].namespace, origin="alpha")
        assert cle.bind().increment() == 1
        assert cle.cloc == "alpha"
        # Someone moves the component; CLE follows without re-configuration.
        trio["alpha"].namespace.move("c", "beta")
        assert cle.bind().increment() == 2
        assert cle.cloc == "beta"

    def test_refers_to_same_component_across_namespaces(self, trio):
        """CLE vs Jini (§3.3): same component, not same interface —
        state must persist across namespace changes."""
        trio["alpha"].register("c", Counter(100))
        cle = CLE("c", runtime=trio["gamma"].namespace, origin="alpha")
        cle.bind().increment()
        trio["alpha"].namespace.move("c", "beta")
        assert cle.bind().get() == 101

    def test_always_default_action(self, pair):
        pair["alpha"].register("c", Counter())
        cle = CLE("c", runtime=pair["beta"].namespace, origin="alpha")
        cle.bind()
        assert cle.last_outcome.action is Action.DEFAULT

    def test_no_target(self, pair):
        cle = CLE("c", runtime=pair["alpha"].namespace)
        assert cle.get_target() is None

    def test_missing_component(self, pair):
        cle = CLE("ghost", runtime=pair["alpha"].namespace, origin="beta")
        with pytest.raises(ComponentNotFoundError):
            cle.bind()
