"""MobilityAttribute base behaviour (Figure 4) and the locking bracket."""

import pytest

from repro.core.attribute import MobilityAttribute
from repro.core.context import use_runtime
from repro.core.models import CLE, COD, REV
from repro.core.triple import CANONICAL_TRIPLES
from repro.errors import ConfigurationError
from repro.rmi.stub import Stub
from repro.bench.workloads import Counter


class Echo(MobilityAttribute):
    """Minimal concrete attribute for base-class tests."""

    MODEL = "CLE"

    def _bind(self) -> Stub:
        self.cloc = self.find(verify=True)
        return self.stub_at(self.cloc)


class TestConstructor:
    def test_finds_cloc_like_figure_4(self, pair):
        """Figure 4's constructor ends with ``cloc = find(name)``."""
        pair["alpha"].register("c", Counter())
        attr = Echo("c", runtime=pair["alpha"].namespace)
        assert attr.cloc == "alpha"

    def test_absent_component_gives_none_cloc(self, pair):
        attr = Echo("ghost", runtime=pair["alpha"].namespace)
        assert attr.cloc is None

    def test_requires_some_runtime(self, pair):
        with pytest.raises(ConfigurationError):
            Echo("c")

    def test_ambient_runtime(self, pair):
        pair["alpha"].register("c", Counter())
        with use_runtime(pair["alpha"].namespace):
            attr = Echo("c")
        assert attr.runtime is pair["alpha"].namespace


class TestBind:
    def test_bind_with_name_rebinds_component(self, pair):
        """Figure 4's ``bind(String n)`` overload."""
        pair["alpha"].register("one", Counter(1))
        pair["alpha"].register("two", Counter(2))
        attr = Echo("one", runtime=pair["beta"].namespace, origin="alpha")
        assert attr.bind().get() == 1
        assert attr.bind("two").get() == 2
        assert attr.name == "two"

    def test_shared_objects_are_refound_each_bind(self, trio):
        """§3.5: a shared object 'may have been moved by another thread in
        between invocations by the current thread'."""
        trio["alpha"].register("c", Counter(), shared=True)
        attr = Echo("c", runtime=trio["gamma"].namespace, origin="alpha")
        attr.bind()
        trio["alpha"].namespace.move("c", "beta")
        attr.bind()
        assert attr.cloc == "beta"

    def test_private_objects_skip_the_refind(self, pair):
        """'If the object is private, cloc always accurately represents the
        bound object's current location' — no lookup spent."""
        pair["alpha"].register("priv", Counter(), shared=False)
        attr = Echo("priv", runtime=pair["alpha"].namespace)
        attr.bind()
        finds_before = len(pair.trace.filtered(kinds=["FIND"]))
        attr.refresh()  # private: must not re-find
        assert len(pair.trace.filtered(kinds=["FIND"])) == finds_before


class TestTriple:
    def test_attribute_exposes_its_design_point(self, pair):
        pair["alpha"].register("c", Counter())
        rev = REV(None, "c", "beta", runtime=pair["alpha"].namespace)
        assert rev.triple == CANONICAL_TRIPLES["REV"]


class TestLockedBracket:
    def test_locked_bind_invoke_unlock(self, pair):
        """§4.4's bracket: lock, bind, invoke, unlock."""
        pair["alpha"].register("geoData", Counter())
        cod = COD("geoData", runtime=pair["beta"].namespace, origin="alpha")
        with cod.locked() as stub:
            assert stub.increment() == 1
        # The lock is gone: a fresh move lock can be had immediately.
        grant = pair["alpha"].namespace.lock("geoData", "gamma", timeout_ms=100)
        pair["alpha"].namespace.unlock(grant)

    def test_locked_move_bind_presents_token(self, pair):
        """A move-locked bind may relocate the contended object."""
        pair["alpha"].register("geoData", Counter(5))
        cod = COD("geoData", runtime=pair["beta"].namespace, origin="alpha")
        with cod.locked() as stub:
            assert stub.get() == 5
        assert pair["beta"].namespace.store.contains("geoData")

    def test_lock_released_on_servant_failure(self, pair):
        pair["alpha"].register("geoData", Counter())
        cle = CLE("geoData", runtime=pair["beta"].namespace, origin="alpha")
        from repro.errors import RemoteInvocationError

        with pytest.raises(RemoteInvocationError):
            with cle.locked() as stub:
                stub.add("boom")
        grant = pair["alpha"].namespace.lock("geoData", "beta", timeout_ms=100)
        pair["alpha"].namespace.unlock(grant)

    def test_repr_is_informative(self, pair):
        pair["alpha"].register("c", Counter())
        attr = Echo("c", runtime=pair["alpha"].namespace)
        text = repr(attr)
        assert "Echo" in text
        assert "'c'" in text
