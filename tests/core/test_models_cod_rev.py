"""COD and REV: factory modes (§4.2) and coercion rows (Table 2)."""

import pytest

from repro.core.coercion import Action
from repro.core.factory import FactoryMode
from repro.core.models import COD, REV
from repro.errors import CoercionError, ComponentNotFoundError
from repro.bench.workloads import Counter


class TestCODObjectMode:
    def test_moves_remote_object_here(self, pair):
        pair["beta"].register("c", Counter(5))
        cod = COD("c", runtime=pair["alpha"].namespace, origin="beta")
        stub = cod.bind()
        assert stub.increment() == 6
        assert pair["alpha"].namespace.store.contains("c")
        assert cod.last_outcome.action is Action.DEFAULT

    def test_local_object_coerces_to_lpc(self, pair):
        """Table 2: COD on a local component behaves as LPC (no move)."""
        pair["alpha"].register("c", Counter())
        cod = COD("c", runtime=pair["alpha"].namespace)
        stub = cod.bind()
        assert stub.increment() == 1
        assert cod.last_outcome.action is Action.COERCE_LPC
        assert cod.last_outcome.effective_model == "LPC"

    def test_missing_object(self, pair):
        cod = COD("ghost", runtime=pair["alpha"].namespace, origin="beta")
        with pytest.raises(ComponentNotFoundError):
            cod.bind()


class TestCODTraditional:
    def test_fetches_class_and_instantiates_fresh_objects(self, pair):
        pair["beta"].register_class(Counter)
        cod = COD("tc", class_name="Counter", source="beta",
                  runtime=pair["alpha"].namespace, ctor_args=(10,))
        first = cod.bind()
        second = cod.bind()
        assert first.increment() == 11
        assert second.increment() == 11  # fresh object per bind
        assert first.ref.name != second.ref.name

    def test_objects_live_locally(self, pair):
        pair["beta"].register_class(Counter)
        cod = COD("tc", class_name="Counter", source="beta",
                  runtime=pair["alpha"].namespace)
        stub = cod.bind()
        assert stub.ref.node_id == "alpha"

    def test_class_cached_after_first_bind(self, pair):
        pair["beta"].register_class(Counter)
        cod = COD("tc", class_name="Counter", source="beta",
                  runtime=pair["alpha"].namespace)
        cod.bind()
        before = pair.trace.summary()["CLASS_REQUEST"]
        cod.bind()
        after = pair.trace.summary()["CLASS_REQUEST"]
        # The warm bind re-validates (conditional) but ships no body.
        assert after == before + 1
        assert pair["alpha"].namespace.classcache.hits > 0

    def test_requires_source(self, pair):
        with pytest.raises(CoercionError):
            COD("tc", class_name="Counter", runtime=pair["alpha"].namespace)


class TestCODSingleUse:
    def test_first_bind_creates_then_binds_object(self, pair):
        pair["beta"].register_class(Counter)
        cod = COD("su", class_name="Counter", source="beta",
                  mode=FactoryMode.SINGLE_USE,
                  runtime=pair["alpha"].namespace)
        first = cod.bind()
        first.increment()
        second = cod.bind()
        # Same object now: state accumulates.
        assert second.increment() == 2

    def test_subsequent_binds_move_the_created_object(self, pair):
        pair["beta"].register_class(Counter)
        cod = COD("su2", class_name="Counter", source="beta",
                  mode=FactoryMode.SINGLE_USE,
                  runtime=pair["alpha"].namespace)
        cod.bind()
        # Push the object away; the next COD bind must bring it back.
        pair["alpha"].namespace.move("su2", "beta")
        stub = cod.bind()
        assert stub.ref.node_id == "alpha"
        assert pair["alpha"].namespace.store.contains("su2")


class TestREVTraditional:
    def test_pushes_class_and_instantiates_at_target(self, pair):
        pair["alpha"].register_class(Counter)
        rev = REV("Counter", "rv", "beta", runtime=pair["alpha"].namespace,
                  ctor_args=(7,))
        stub = rev.bind()
        assert stub.ref.node_id == "beta"
        assert stub.increment() == 8
        assert rev.last_outcome.action is Action.DEFAULT

    def test_fresh_object_per_bind(self, pair):
        pair["alpha"].register_class(Counter)
        rev = REV("Counter", "rv", "beta", runtime=pair["alpha"].namespace)
        a = rev.bind()
        b = rev.bind()
        assert a.ref.name != b.ref.name

    def test_class_pushed_once(self, pair):
        pair["alpha"].register_class(Counter)
        rev = REV("Counter", "rv", "beta", runtime=pair["alpha"].namespace)
        rev.bind()
        rev.bind()
        pushes = [
            e for e in pair.trace.events()
            if e.kind == "CLASS_TRANSFER" and not e.local
        ]
        # probe+body (cold) then probe only (warm): 3 requests total.
        requests = [e for e in pushes if not e.kind.startswith("REPLY")]
        assert len(requests) == 3

    def test_mode_requires_class_name(self, pair):
        with pytest.raises(CoercionError):
            REV(None, "rv", "beta", mode=FactoryMode.TRADITIONAL,
                runtime=pair["alpha"].namespace)


class TestREVObjectMode:
    def test_moves_local_object_to_target(self, pair):
        pair["alpha"].register("c", Counter(3))
        rev = REV(None, "c", "beta", runtime=pair["alpha"].namespace)
        stub = rev.bind()
        assert stub.ref.node_id == "beta"
        assert stub.increment() == 4
        assert not pair["alpha"].namespace.store.contains("c")

    def test_already_at_target_coerces_to_rpc(self, pair):
        """Table 2: REV remote-at-target behaves as RPC (no move)."""
        pair["beta"].register("c", Counter())
        rev = REV(None, "c", "beta", runtime=pair["alpha"].namespace,
                  origin="beta")
        moves_before = pair["beta"].namespace.mover.moves_out
        stub = rev.bind()
        assert stub.increment() == 1
        assert rev.last_outcome.action is Action.COERCE_RPC
        assert rev.last_outcome.effective_model == "RPC"
        assert pair["beta"].namespace.mover.moves_out == moves_before

    def test_remote_not_at_target_still_moves(self, trio):
        """Table 2 REV row: remote-not-at-target is Default (move)."""
        trio["gamma"].register("c", Counter())
        rev = REV(None, "c", "beta", runtime=trio["alpha"].namespace,
                  origin="gamma")
        stub = rev.bind()
        assert stub.ref.node_id == "beta"
        assert trio["beta"].namespace.store.contains("c")

    def test_single_use_rev(self, pair):
        pair["alpha"].register_class(Counter)
        rev = REV("Counter", "su-rev", "beta", mode=FactoryMode.SINGLE_USE,
                  runtime=pair["alpha"].namespace)
        first = rev.bind()
        first.increment()
        second = rev.bind()
        assert second.increment() == 2  # bound to the created object
        assert rev.name == "su-rev"
