"""CLI behaviour: exit codes, --explain, --fix-suggestions, --write-baseline."""

from __future__ import annotations

import textwrap
from pathlib import Path

from magelint.cli import main
from magelint.suppress import load_baseline

OFFENDER = """
    def run_job(fn):
        try:
            fn()
        except BaseException:
            pass
"""

CLEAN = """
    def run_job(fn):
        try:
            fn()
        except Exception:
            pass
"""


def _write(tmp_path: Path, code: str) -> Path:
    target = tmp_path / "src/repro/runtime/mod.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    return target


def test_exit_one_on_findings_and_zero_when_clean(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, OFFENDER)
    assert main(["src"]) == 1
    out = capsys.readouterr().out
    assert "MAGE003" in out

    _write(tmp_path, CLEAN)
    assert main(["src"]) == 0


def test_exit_codes_for_usage_errors(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main([]) == 2                       # no paths
    assert main(["--explain", "MAGE999"]) == 2  # unknown rule
    bad = tmp_path / "bad_baseline.txt"
    bad.write_text("MAGE003|x|y\n")
    _write(tmp_path, OFFENDER)
    assert main(["src", "--baseline", str(bad)]) == 2


def test_explain_prints_rule_documentation(capsys):
    assert main(["--explain", "MAGE001"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("MAGE001")
    assert "Flags:" in out and "Clean:" in out
    # Case-insensitive rule lookup is a convenience, not a trap.
    assert main(["--explain", "mage005"]) == 0


def test_fix_suggestions_prints_unified_diff(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, OFFENDER)
    assert main(["src", "--fix-suggestions"]) == 1
    out = capsys.readouterr().out
    assert "-    except BaseException:" in out
    assert "+    except Exception:" in out


def test_write_baseline_then_gate_passes(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, OFFENDER)
    generated = tmp_path / "generated_baseline.txt"
    assert main(["src", "--write-baseline", str(generated)]) == 0
    assert len(load_baseline(generated)) == 1
    # The generated baseline immediately gates the same tree green.
    assert main(["src", "--baseline", str(generated)]) == 0
