"""Make ``tools/magelint`` importable for the lint fixture suite.

The analyzer lives under ``tools/`` (it is a development tool, not part
of the shipped ``repro`` package), so the test process — which runs with
``PYTHONPATH=src`` — needs the tools directory added explicitly.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS_DIR = REPO_ROOT / "tools"

if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))
