"""Per-rule fixtures: one minimal offender that must flag, one near-miss
that must stay clean.

These tests are the liveness proof the acceptance criteria demand:
deleting (or unregistering) any rule's implementation fails its offender
test here, so a rule cannot silently rot out of the registry.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from magelint.engine import lint_paths
from magelint.rules import ALL_RULES, RULES_BY_ID

#: Default fixture location: inside the path scope every rule covers.
DEFAULT_REL = "src/repro/runtime/fixture_mod.py"


def lint_snippet(tmp_path: Path, code: str, rel_path: str = DEFAULT_REL,
                 rule: str | None = None):
    """Lint one snippet written at ``rel_path`` under a fake repo root."""
    target = tmp_path / rel_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    run = lint_paths([tmp_path / "src"], root=tmp_path)
    assert not run.parse_errors, run.parse_errors
    if rule is None:
        return run.findings
    return [f for f in run.findings if f.rule == rule]


def test_every_rule_is_registered():
    ids = sorted(rule.id for rule in ALL_RULES)
    assert ids == [f"MAGE{i:03d}" for i in range(1, 11)]
    for rule in ALL_RULES:
        assert rule.title and rule.rationale, f"{rule.id} lacks docs"
        assert rule.explain().startswith(rule.id)


# ---------------------------------------------------------------------------
# MAGE001 — blocking call under a held lock
# ---------------------------------------------------------------------------


def test_mage001_flags_rpc_under_lock(tmp_path):
    findings = lint_snippet(tmp_path, """
        class Mover:
            def ship(self, name, target, payload):
                with self._lock:
                    ack = self._transport.call(self.node_id, target, payload)
                return ack
    """, rule="MAGE001")
    assert len(findings) == 1
    assert "blocks while `self._lock` is held" in findings[0].message


def test_mage001_clean_when_call_moves_outside(tmp_path):
    findings = lint_snippet(tmp_path, """
        import threading

        class Mover:
            def __init__(self):
                self._lock = threading.Lock()
                self._idle = threading.Condition(self._lock)

            def ship(self, name, target, payload):
                with self._lock:
                    self._departing.add(name)      # state flip only
                    self._idle.wait()              # Condition over this lock
                ack = self._transport.call(self.node_id, target, payload)
                with self._cond:
                    self._cond.wait(timeout=1.0)   # held condition: releases
                return ack
    """, rule="MAGE001")
    assert findings == []


def test_mage001_flags_foreign_wait_under_lock(tmp_path):
    findings = lint_snippet(tmp_path, """
        class Pool:
            def drain(self):
                with self._lock:
                    self._done_event.wait()
    """, rule="MAGE001")
    assert len(findings) == 1


# ---------------------------------------------------------------------------
# MAGE002 — error classes must survive the wire
# ---------------------------------------------------------------------------


def test_mage002_flags_multiarg_error_without_reduce(tmp_path):
    findings = lint_snippet(tmp_path, """
        class LockBouncedError(Exception):
            def __init__(self, name, new_location):
                super().__init__(f"{name!r} bounced to {new_location!r}")
                self.name = name
                self.new_location = new_location
    """, rule="MAGE002")
    assert len(findings) == 1
    assert findings[0].symbol == "LockBouncedError"
    assert "__reduce__" in findings[0].message


def test_mage002_clean_with_reduce_or_plain_message(tmp_path):
    findings = lint_snippet(tmp_path, """
        class GoodError(Exception):
            def __init__(self, name, where):
                super().__init__(f"{name!r} at {where!r}")
                self.name, self.where = name, where

            def __reduce__(self):
                return (type(self), (self.name, self.where))

        class PlainError(Exception):
            def __init__(self, message):
                super().__init__(message)

        class PlainRecord:  # not an exception: multi-arg init is fine
            def __init__(self, a, b):
                self.a, self.b = a, b
    """, rule="MAGE002")
    assert findings == []


def test_mage002_flags_formatted_single_arg(tmp_path):
    # One parameter, but formatted before reaching Exception.__init__:
    # the default reduction replays the *formatted* string into __init__,
    # double-wrapping on every hop.
    findings = lint_snippet(tmp_path, """
        class NotBoundishError(Exception):
            def __init__(self, name):
                super().__init__(f"name {name!r} is not bound")
                self.name = name
    """, rule="MAGE002")
    assert len(findings) == 1


# ---------------------------------------------------------------------------
# MAGE003 — BaseException swallowing
# ---------------------------------------------------------------------------


def test_mage003_flags_swallowed_baseexception_and_bare_except(tmp_path):
    findings = lint_snippet(tmp_path, """
        def run_job(fn):
            try:
                fn()
            except BaseException:
                pass

        def run_other(fn):
            try:
                fn()
            except:
                return None
    """, rule="MAGE003")
    assert len(findings) == 2
    assert any("bare" in f.message for f in findings)


def test_mage003_clean_on_cleanup_then_reraise(tmp_path):
    findings = lint_snippet(tmp_path, """
        def guarded(fn, locks, name):
            try:
                fn()
            except BaseException:
                locks.abort_departure(name)
                raise
            try:
                fn()
            except Exception:
                pass  # narrow catch: interrupts pass through
    """, rule="MAGE003")
    assert findings == []


def test_mage003_nested_def_raise_does_not_count(tmp_path):
    findings = lint_snippet(tmp_path, """
        def sneaky(fn):
            try:
                fn()
            except BaseException:
                def helper():
                    raise
                return helper
    """, rule="MAGE003")
    assert len(findings) == 1


def test_mage003_offers_fix_suggestion(tmp_path):
    findings = lint_snippet(tmp_path, """
        def run_job(fn):
            try:
                fn()
            except BaseException:
                pass
    """, rule="MAGE003")
    assert len(findings) == 1
    assert "-    except BaseException:" in findings[0].suggestion
    assert "+    except Exception:" in findings[0].suggestion


# ---------------------------------------------------------------------------
# MAGE004 — fan-outs must thread deadline=
# ---------------------------------------------------------------------------


def test_mage004_flags_deadlineless_fanout_in_cluster(tmp_path):
    findings = lint_snippet(tmp_path, """
        def sweep(self, node_ids, kind, payload):
            futures = self.scatter(node_ids, kind, payload)
            return futures
    """, rel_path="src/repro/cluster/fixture_sweep.py", rule="MAGE004")
    assert len(findings) == 1
    assert "deadline=" in findings[0].message


def test_mage004_clean_with_deadline_or_outside_scope(tmp_path):
    clean_in_scope = lint_snippet(tmp_path, """
        def sweep(self, node_ids, kind, payload, deadline=None):
            explicit = self.scatter(node_ids, kind, payload, deadline=deadline)
            deliberate = self.gather(explicit.values(), deadline=None)
            return deliberate
    """, rel_path="src/repro/cluster/fixture_ok.py", rule="MAGE004")
    assert clean_in_scope == []
    out_of_scope = lint_snippet(tmp_path, """
        def sweep(self, node_ids, kind, payload):
            return self.scatter(node_ids, kind, payload)
    """, rel_path="src/repro/bench/fixture_bench.py", rule="MAGE004")
    assert out_of_scope == []


# ---------------------------------------------------------------------------
# MAGE005 — wall clock in timing code
# ---------------------------------------------------------------------------


def test_mage005_flags_wall_clock_in_net(tmp_path):
    findings = lint_snippet(tmp_path, """
        import time

        def lease_expired(granted_at, ttl_s):
            return time.time() - granted_at > ttl_s
    """, rel_path="src/repro/net/fixture_lease.py", rule="MAGE005")
    assert len(findings) == 1
    assert "time.monotonic()" in findings[0].suggestion


def test_mage005_clean_on_monotonic_and_outside_scope(tmp_path):
    in_scope = lint_snippet(tmp_path, """
        import time

        def lease_expired(granted_at, ttl_s):
            return time.monotonic() - granted_at > ttl_s
    """, rel_path="src/repro/net/fixture_mono.py", rule="MAGE005")
    assert in_scope == []
    bench_code = lint_snippet(tmp_path, """
        import time

        def stamp_results():
            return time.time()  # display timestamp: fine outside the scope
    """, rel_path="src/repro/bench/fixture_stamp.py", rule="MAGE005")
    assert bench_code == []


# ---------------------------------------------------------------------------
# MAGE006 — MessageKind exhaustiveness (whole-program)
# ---------------------------------------------------------------------------

_ENUM = """
    import enum

    class MessageKind(enum.Enum):
        INVOKE = "INVOKE"
        GOSSIP = "GOSSIP"
        REPLY = "REPLY"
        BATCH = "BATCH"
"""


def test_mage006_flags_unhandled_kind(tmp_path):
    (tmp_path / "src/repro/net").mkdir(parents=True)
    (tmp_path / "src/repro/net/message.py").write_text(textwrap.dedent(_ENUM))
    (tmp_path / "src/repro/runtime").mkdir(parents=True)
    (tmp_path / "src/repro/runtime/external.py").write_text(textwrap.dedent("""
        from repro.net.message import MessageKind

        class Dispatcher:
            def __init__(self):
                self._handlers = {
                    MessageKind.INVOKE: self._on_invoke,
                }
    """))
    run = lint_paths([tmp_path / "src"], root=tmp_path)
    findings = [f for f in run.findings if f.rule == "MAGE006"]
    assert [f.symbol for f in findings] == ["GOSSIP"]  # REPLY/BATCH exempt


def test_mage006_clean_when_every_kind_handled(tmp_path):
    (tmp_path / "src/repro/net").mkdir(parents=True)
    (tmp_path / "src/repro/net/message.py").write_text(textwrap.dedent(_ENUM))
    (tmp_path / "src/repro/runtime").mkdir(parents=True)
    (tmp_path / "src/repro/runtime/external.py").write_text(textwrap.dedent("""
        from repro.net.message import MessageKind

        class Dispatcher:
            def __init__(self):
                self._handlers = {
                    MessageKind.INVOKE: self._on_invoke,
                    MessageKind.GOSSIP: self._on_gossip,
                }
    """))
    run = lint_paths([tmp_path / "src"], root=tmp_path)
    assert [f for f in run.findings if f.rule == "MAGE006"] == []


def test_mage006_flags_ad_hoc_payload_class(tmp_path):
    (tmp_path / "src/repro/net").mkdir(parents=True)
    (tmp_path / "src/repro/net/message.py").write_text(textwrap.dedent(_ENUM))
    (tmp_path / "src/repro/rmi").mkdir(parents=True)
    (tmp_path / "src/repro/rmi/protocol.py").write_text(textwrap.dedent("""
        class InvokeRequest:
            pass
    """))
    (tmp_path / "src/repro/runtime").mkdir(parents=True)
    (tmp_path / "src/repro/runtime/caller.py").write_text(textwrap.dedent("""
        from repro.net.message import MessageKind

        class GossipDigest:   # defined here, NOT in rmi/protocol.py
            pass

        class Sender:
            def __init__(self):
                self._handlers = {
                    MessageKind.INVOKE: self._on_invoke,
                    MessageKind.GOSSIP: self._on_gossip,
                }

            def poke(self, transport, peer):
                transport.call("me", peer, MessageKind.GOSSIP, GossipDigest())
                transport.call("me", peer, MessageKind.INVOKE, InvokeRequest())
    """))
    run = lint_paths([tmp_path / "src"], root=tmp_path)
    symbols = {f.symbol for f in run.findings if f.rule == "MAGE006"}
    assert symbols == {"GOSSIP:GossipDigest"}


# ---------------------------------------------------------------------------
# MAGE007 — shared containers stay under their owning lock
# ---------------------------------------------------------------------------


def test_mage007_flags_unguarded_mutation(tmp_path):
    findings = lint_snippet(tmp_path, """
        import threading

        class AddressBook:
            def __init__(self):
                self._lock = threading.Lock()
                self._endpoints = {}

            def connect(self, node_id, endpoint):
                with self._lock:
                    self._endpoints[node_id] = endpoint

            def forget(self, node_id):
                self._endpoints.pop(node_id, None)
    """, rule="MAGE007")
    assert len(findings) == 1
    assert findings[0].symbol == "AddressBook.forget:_endpoints"


def test_mage007_clean_under_lock_and_locked_convention(tmp_path):
    findings = lint_snippet(tmp_path, """
        import threading

        class AddressBook:
            def __init__(self):
                self._lock = threading.Lock()
                self._endpoints = {}
                self._endpoints["seed"] = None   # constructor fill: unshared

            def connect(self, node_id, endpoint):
                with self._lock:
                    self._endpoints[node_id] = endpoint

            def forget(self, node_id):
                with self._lock:
                    self._forget_locked(node_id)

            def _forget_locked(self, node_id):
                self._endpoints.pop(node_id, None)

            def local_scratch(self):
                scratch = {}
                scratch["x"] = 1   # not a shared attribute
                return scratch
    """, rule="MAGE007")
    assert findings == []


def test_mage007_never_guarded_attr_is_not_flagged(tmp_path):
    # A container the class never locks has no inferred owner: locking
    # discipline is learned from the class's own code, not imposed.
    findings = lint_snippet(tmp_path, """
        class Unshared:
            def __init__(self):
                self._stuff = {}

            def put(self, k, v):
                self._stuff[k] = v
    """, rule="MAGE007")
    assert findings == []


# ---------------------------------------------------------------------------
# MAGE008 — wire-codec payload coverage (whole-program)
# ---------------------------------------------------------------------------

_PROTOCOL = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class InvokeRequest:
        name: str

    @dataclass(frozen=True)
    class GossipDigest:
        entries: "tuple[str, ...]"

    class NotAPayload:   # plain class: outside the dataclass vocabulary
        pass
"""


def _write_wire_fixture(tmp_path, codec_source: str | None) -> set[str]:
    (tmp_path / "src/repro/rmi").mkdir(parents=True)
    (tmp_path / "src/repro/rmi/protocol.py").write_text(
        textwrap.dedent(_PROTOCOL))
    (tmp_path / "src/repro/net").mkdir(parents=True)
    (tmp_path / "src/repro/net/message.py").write_text(textwrap.dedent("""
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class ReplyPayload:
            value: object = None
    """))
    if codec_source is not None:
        (tmp_path / "src/repro/net/wirecodec.py").write_text(
            textwrap.dedent(codec_source))
    run = lint_paths([tmp_path / "src"], root=tmp_path)
    return {f.symbol for f in run.findings if f.rule == "MAGE008"}


def test_mage008_flags_unregistered_payload(tmp_path):
    symbols = _write_wire_fixture(tmp_path, """
        from repro.rmi import protocol
        from repro.net.message import ReplyPayload

        REGISTERED_PAYLOADS = (
            protocol.InvokeRequest,
            ReplyPayload,
        )
        PICKLE_FALLBACK = ()
    """)
    assert symbols == {"GossipDigest"}


def test_mage008_clean_when_registered_or_parked(tmp_path):
    symbols = _write_wire_fixture(tmp_path, """
        from repro.rmi import protocol
        from repro.net.message import ReplyPayload

        REGISTERED_PAYLOADS: "tuple[type, ...]" = (
            protocol.InvokeRequest,
            ReplyPayload,
        )
        # Deliberately pickled: huge dynamic body, measured slower binary.
        PICKLE_FALLBACK = (protocol.GossipDigest,)
    """)
    assert symbols == set()


def test_mage008_silent_without_codec_module(tmp_path):
    # Linting a subtree that has no wirecodec.py (e.g. the magelint
    # self-check) must not demand coverage from thin air.
    assert _write_wire_fixture(tmp_path, None) == set()


def test_mage008_real_registry_covers_real_protocol():
    from repro.net import wirecodec
    from repro.rmi import protocol as real_protocol

    names = {cls.__name__ for cls in wirecodec.REGISTERED_PAYLOADS}
    names |= {cls.__name__ for cls in wirecodec.PICKLE_FALLBACK}
    import dataclasses
    declared = {
        name for name, obj in vars(real_protocol).items()
        if isinstance(obj, type) and dataclasses.is_dataclass(obj)
        and obj.__module__ == real_protocol.__name__
    }
    assert declared <= names
    assert "ReplyPayload" in names


# ---------------------------------------------------------------------------
# MAGE009 — blocking call in an inline-declared handler
# ---------------------------------------------------------------------------


def test_mage009_flags_blocking_declared_handler(tmp_path):
    findings = lint_snippet(tmp_path, """
        class Server:
            @inline_safe
            def handle(self, message):
                self._ready.wait(5.0)
                return self._handlers[message.kind](message.payload)
    """, rel_path="src/repro/net/fixture_inline.py", rule="MAGE009")
    assert len(findings) == 1
    assert "reactor loop thread" in findings[0].message
    assert findings[0].symbol.endswith("wait")


def test_mage009_follows_inline_dispatch_targets(tmp_path):
    """The declaration covers the methods the dispatch table puts on
    the loop, not just the decorated entry point itself."""
    findings = lint_snippet(tmp_path, """
        import time

        class Server:
            def __init__(self):
                self._handlers = {
                    MessageKind.PING: self._on_ping,
                    MessageKind.INVOKE: self._on_invoke,
                }

            @inline_safe
            def handle(self, message):
                return self._handlers[message.kind](message.payload)

            def _on_ping(self, payload):
                time.sleep(0.1)
                return "pong"

            def _on_invoke(self, payload):
                return self._transport.call("a", "b", payload)
    """, rel_path="src/repro/net/fixture_inline.py", rule="MAGE009")
    # _on_ping flags (PING is inline-dispatched); _on_invoke does not
    # (INVOKE never runs on the loop thread).
    assert len(findings) == 1
    assert "_on_ping" in findings[0].symbol
    assert "time.sleep" in findings[0].symbol


def test_mage009_ignores_undeclared_handlers(tmp_path):
    findings = lint_snippet(tmp_path, """
        import time

        class Server:
            def __init__(self):
                self._handlers = {MessageKind.PING: self._on_ping}

            def handle(self, message):   # never declared inline_safe
                return self._handlers[message.kind](message.payload)

            def _on_ping(self, payload):
                time.sleep(0.1)
                return "pong"
    """, rel_path="src/repro/net/fixture_inline.py", rule="MAGE009")
    assert findings == []


def test_mage009_clean_nonblocking_handler(tmp_path):
    findings = lint_snippet(tmp_path, """
        class Server:
            def __init__(self):
                self._handlers = {MessageKind.PING: self._on_ping}

            @inline_safe
            def handle(self, message):
                return self._handlers[message.kind](message.payload)

            def _on_ping(self, payload):
                return "pong"
    """, rel_path="src/repro/net/fixture_inline.py", rule="MAGE009")
    assert findings == []


def test_mage009_members_mirror_runtime_inline_kinds():
    """The rule's hardcoded member set must track INLINE_KINDS: growing
    the allowlist without growing the lint check would leave new kinds'
    handlers unchecked."""
    from repro.net.message import INLINE_KINDS

    from magelint.rules.mage009_inline_blocking import INLINE_MEMBERS

    assert INLINE_MEMBERS == {kind.name for kind in INLINE_KINDS}


# ---------------------------------------------------------------------------
# MAGE010 — direct servant-method calls outside the sanctioned bypass
# ---------------------------------------------------------------------------


def test_mage010_flags_direct_servant_call(tmp_path):
    findings = lint_snippet(tmp_path, """
        class Sneaky:
            def poke(self, name):
                servant = self._store.get(name)
                return servant.update(self._pending)
    """, rule="MAGE010")
    assert len(findings) == 1
    assert findings[0].symbol == "servant.update"
    assert "copy semantics" in findings[0].message


def test_mage010_flags_record_obj_chain(tmp_path):
    findings = lint_snippet(tmp_path, """
        class Sneakier:
            def poke(self, name):
                record = self._store.lookup(name)
                return record.obj.refresh()
    """, rule="MAGE010")
    assert len(findings) == 1


def test_mage010_clean_near_misses(tmp_path):
    findings = lint_snippet(tmp_path, """
        class Honest:
            def lookup_only(self, name):
                # Pulling the servant out without calling it: migration
                # and pickling paths do this legitimately.
                return self._store.get(name)

            def via_invoker(self, name, args, kwargs):
                # The sanctioned dispatch: isolation happens inside.
                return self._invoker.dispatch(name, "update", args, kwargs)

            def unrelated_get(self, name):
                # A .get() on something that is not an object store.
                entry = self._cache.get(name)
                return entry.refresh()
    """, rule="MAGE010")
    assert findings == []


def test_mage010_sanctioned_modules_stay_clean(tmp_path):
    findings = lint_snippet(tmp_path, """
        class LocalDispatch:
            def _handle(self, name, method, args, kwargs):
                servant = self._store.get(name)
                return servant.update(args)
    """, rel_path="src/repro/rmi/bypass.py", rule="MAGE010")
    assert findings == []


# ---------------------------------------------------------------------------
# Inline suppression
# ---------------------------------------------------------------------------


def test_inline_disable_suppresses_only_named_rule(tmp_path):
    findings = lint_snippet(tmp_path, """
        def run_job(fn):
            try:
                fn()
            except BaseException:  # magelint: disable=MAGE003(worker thread; failure owned by peer)
                pass
    """)
    assert [f for f in findings if f.rule == "MAGE003"] == []


def test_inline_disable_for_other_rule_does_not_mask(tmp_path):
    findings = lint_snippet(tmp_path, """
        def run_job(fn):
            try:
                fn()
            except BaseException:  # magelint: disable=MAGE001(wrong rule named)
                pass
    """, rule="MAGE003")
    assert len(findings) == 1
