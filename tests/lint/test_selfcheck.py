"""The gates CI enforces, runnable locally as plain tests.

* ``src/`` lints clean against the committed baseline (the CI gate).
* The committed baseline is well-formed, small (≤ 10 entries per the
  acceptance criteria), justified, and free of stale entries.
* magelint lints its own source clean — the analyzer is held to the
  rules it enforces.
* mypy passes on the strict-ring modules (skipped when mypy is not
  installed; CI installs it).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from magelint.engine import lint_paths
from magelint.suppress import load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "tools/magelint/baseline.txt"


def test_src_lints_clean_with_committed_baseline():
    run = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT, baseline=BASELINE)
    assert run.parse_errors == []
    rendered = "\n".join(f.render() for f in run.findings)
    assert run.findings == [], f"magelint findings in src/:\n{rendered}"
    stale = "\n".join(run.stats.stale_baseline)
    assert run.stats.stale_baseline == [], f"stale baseline entries:\n{stale}"


def test_committed_baseline_is_small_and_justified():
    entries = load_baseline(BASELINE)  # load_baseline rejects empty reasons
    assert len(entries) <= 10
    for key, reason in entries.items():
        assert len(reason) >= 20, f"{key}: reason too thin to count as one"
        assert "TODO" not in reason, f"{key}: unfinished justification"


def test_magelint_lints_itself_clean():
    run = lint_paths([REPO_ROOT / "tools/magelint"], root=REPO_ROOT)
    assert run.parse_errors == []
    rendered = "\n".join(f.render() for f in run.findings)
    assert run.findings == [], f"magelint findings in its own source:\n{rendered}"


def test_mypy_strict_ring_passes():
    pytest.importorskip("mypy")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini",
         "src/repro/errors.py", "src/repro/net/deadline.py",
         "src/repro/net/endpoint.py"],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
