"""Baseline round-trip and suppression-file validation."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from magelint.engine import lint_paths
from magelint.suppress import BaselineError, format_baseline, load_baseline

OFFENDER = """
    def run_job(fn):
        try:
            fn()
        except BaseException:
            pass

    class TwoArgError(Exception):
        def __init__(self, name, where):
            super().__init__(f"{name} at {where}")
"""


def _write_offender(tmp_path: Path) -> Path:
    target = tmp_path / "src/repro/runtime/offender.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(OFFENDER))
    return target


def test_baseline_round_trip_suppresses_exactly_the_written_findings(tmp_path):
    _write_offender(tmp_path)
    first = lint_paths([tmp_path / "src"], root=tmp_path)
    assert len(first.findings) == 2  # MAGE003 + MAGE002

    reasons = {f.key(): f"accepted in test because {f.rule}" for f in first.findings}
    baseline_path = tmp_path / "baseline.txt"
    baseline_path.write_text(format_baseline(first.findings, reasons))

    # Loading returns exactly the keys that were written, reasons intact.
    loaded = load_baseline(baseline_path)
    assert set(loaded) == {f.key() for f in first.findings}
    assert all(reason.startswith("accepted in test") for reason in loaded.values())

    # Re-linting with the baseline suppresses everything and is stale-free.
    second = lint_paths([tmp_path / "src"], root=tmp_path, baseline=baseline_path)
    assert second.findings == []
    assert second.ok
    assert second.stats.suppressed_baseline == 2
    assert second.stats.stale_baseline == []


def test_baseline_keys_survive_line_shifts(tmp_path):
    target = _write_offender(tmp_path)
    first = lint_paths([tmp_path / "src"], root=tmp_path)
    baseline_path = tmp_path / "baseline.txt"
    reasons = {f.key(): "shift test" for f in first.findings}
    baseline_path.write_text(format_baseline(first.findings, reasons))

    # Prepend unrelated lines: line numbers move, symbols do not.
    target.write_text("import os\nimport sys\n\n\n" + target.read_text())
    shifted = lint_paths([tmp_path / "src"], root=tmp_path, baseline=baseline_path)
    assert shifted.findings == []
    assert shifted.stats.suppressed_baseline == 2


def test_fixed_findings_surface_as_stale_entries(tmp_path):
    _write_offender(tmp_path)
    first = lint_paths([tmp_path / "src"], root=tmp_path)
    baseline_path = tmp_path / "baseline.txt"
    reasons = {f.key(): "until fixed" for f in first.findings}
    baseline_path.write_text(format_baseline(first.findings, reasons))

    # "Fix" the offender entirely; the baseline entries must be reported
    # stale instead of silently lingering.
    (tmp_path / "src/repro/runtime/offender.py").write_text("X = 1\n")
    run = lint_paths([tmp_path / "src"], root=tmp_path, baseline=baseline_path)
    assert run.findings == []
    assert len(run.stats.stale_baseline) == 2


def test_baseline_rejects_missing_reason(tmp_path):
    bad = tmp_path / "baseline.txt"
    bad.write_text("MAGE003|src/x.py|L5|\n")
    with pytest.raises(BaselineError, match="no reason"):
        load_baseline(bad)


def test_baseline_rejects_malformed_lines(tmp_path):
    bad = tmp_path / "baseline.txt"
    bad.write_text("MAGE003|src/x.py|L5\n")
    with pytest.raises(BaselineError, match="expected"):
        load_baseline(bad)
    bad.write_text("NOTARULE|src/x.py|L5|because\n")
    with pytest.raises(BaselineError, match="bad rule id"):
        load_baseline(bad)


def test_write_baseline_emits_todo_reasons(tmp_path):
    _write_offender(tmp_path)
    run = lint_paths([tmp_path / "src"], root=tmp_path)
    body = format_baseline(run.findings)
    assert body.count("TODO: justify or fix") == 2
    # The TODO text is still a non-empty reason, so the file round-trips.
    path = tmp_path / "generated.txt"
    path.write_text(body)
    assert len(load_baseline(path)) == 2
