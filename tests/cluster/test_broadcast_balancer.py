"""Cluster-wide scatter-gather: broadcast, class distribution, balancing."""

import pytest

from repro.bench.workloads import Counter
from repro.cluster import Cluster, LoadBalancer
from repro.errors import ConfigurationError, NodeUnreachableError
from repro.net.message import MessageKind


class TestBroadcast:
    def test_ping_every_node(self, quad):
        assert quad.broadcast(MessageKind.PING) == {
            n: "pong" for n in quad.node_ids()
        }

    def test_targets_subset_and_src(self, quad):
        answers = quad.broadcast(
            MessageKind.PING, src="delta", targets=["alpha", "beta"]
        )
        assert answers == {"alpha": "pong", "beta": "pong"}

    def test_return_exceptions_keeps_sweep_alive(self, trio):
        trio.crash("beta")
        answers = trio.broadcast(MessageKind.PING, return_exceptions=True)
        assert answers["alpha"] == "pong"
        assert answers["gamma"] == "pong"
        assert isinstance(answers["beta"], NodeUnreachableError)

    def test_failure_raises_after_gathering(self, trio):
        trio.crash("beta")
        with pytest.raises(NodeUnreachableError):
            trio.broadcast(MessageKind.PING)


class TestPushClassEverywhere:
    def test_distributes_from_explicit_source(self, quad):
        quad["beta"].register_class(Counter)
        hashes = quad.push_class_everywhere("Counter", from_node="beta")
        assert set(hashes) == set(quad.node_ids())
        assert len(set(hashes.values())) == 1
        for node in quad:
            assert node.namespace.classcache.has_class("Counter")

    def test_finds_the_serving_node(self, trio):
        trio["gamma"].register_class(Counter)
        hashes = trio.push_class_everywhere("Counter")
        assert set(hashes) == {"alpha", "beta", "gamma"}
        assert trio["alpha"].namespace.classcache.has_class("Counter")

    def test_unknown_class_rejected(self, trio):
        with pytest.raises(ConfigurationError):
            trio.push_class_everywhere("Ghost")

    def test_instantiate_everywhere_after_distribution(self, quad):
        quad["alpha"].register_class(Counter)
        quad.push_class_everywhere("Counter")
        for i, target in enumerate(quad.node_ids()):
            quad["alpha"].namespace.instantiate("Counter", f"c{i}", target)
        for i, target in enumerate(quad.node_ids()):
            assert quad[target].namespace.store.contains(f"c{i}")


class TestQueryAllLoads:
    def test_sweeps_every_node(self, trio):
        for i, node in enumerate(trio):
            node.set_load(10.0 * i)
        assert trio.query_all_loads() == {
            "alpha": 0.0, "beta": 10.0, "gamma": 20.0,
        }

    def test_dead_node_drops_out(self, trio):
        trio["gamma"].set_load(50.0)
        trio.crash("beta")
        loads = trio.query_all_loads()
        assert set(loads) == {"alpha", "gamma"}


class TestClusterLocate:
    def test_locates_after_moves(self, quad):
        quad["alpha"].register("doc", Counter())
        quad["alpha"].move("doc", "beta")
        quad["beta"].move("doc", "delta")
        assert quad.locate("doc") == "delta"


class TestLoadBalancer:
    def test_snapshot_and_overloaded(self, trio):
        trio["alpha"].set_load(150.0)
        trio["beta"].set_load(30.0)
        trio["gamma"].set_load(110.0)
        balancer = LoadBalancer(trio, threshold=100.0)
        loads = balancer.snapshot()
        assert balancer.overloaded(loads) == ["alpha", "gamma"]
        assert balancer.least_loaded(loads) == "beta"

    def test_least_loaded_respects_exclusions(self, trio):
        trio["alpha"].set_load(10.0)
        trio["beta"].set_load(20.0)
        trio["gamma"].set_load(30.0)
        balancer = LoadBalancer(trio)
        assert balancer.least_loaded(exclude=("alpha",)) == "beta"

    def test_rebalance_moves_off_overloaded_host(self, trio):
        trio["alpha"].set_load(180.0)
        trio["beta"].set_load(20.0)
        trio["gamma"].set_load(60.0)
        trio["alpha"].register("worker", Counter())
        balancer = LoadBalancer(trio, threshold=100.0)
        assert balancer.rebalance("worker") == "beta"
        assert trio["beta"].namespace.store.contains("worker")

    def test_rebalance_keeps_component_under_threshold(self, trio):
        trio["alpha"].set_load(40.0)
        trio["alpha"].register("worker", Counter())
        balancer = LoadBalancer(trio, threshold=100.0)
        assert balancer.rebalance("worker") == "alpha"
        assert trio["alpha"].namespace.store.contains("worker")

    def test_rebalance_stays_when_everyone_is_hotter(self, trio):
        trio["alpha"].set_load(120.0)
        trio["beta"].set_load(200.0)
        trio["gamma"].set_load(150.0)
        trio["alpha"].register("worker", Counter())
        balancer = LoadBalancer(trio, threshold=100.0)
        assert balancer.rebalance("worker") == "alpha"

    def test_balancer_over_tcp(self):
        with Cluster(["n1", "n2", "n3"], transport="tcp") as cluster:
            cluster["n1"].set_load(150.0)
            cluster["n2"].set_load(10.0)
            cluster["n3"].set_load(70.0)
            cluster["n1"].register("svc", Counter())
            balancer = LoadBalancer(cluster, threshold=100.0)
            assert balancer.rebalance("svc") == "n2"
            assert cluster["n2"].namespace.store.contains("svc")
