"""LoadBalancer hedged writes + streamed migration over real sockets."""

import pytest

from repro.cluster import Cluster
from repro.cluster.load import LoadBalancer
from repro.errors import MageError
from repro.net.tcpnet import TcpNetwork


class Bulk:
    """State big enough to stream under a tiny threshold."""

    def __init__(self, size=64 * 1024):
        self.payload = b"b" * size


class TestHedgeCandidates:
    def test_least_loaded_first(self, trio):
        balancer = LoadBalancer(trio)
        loads = {"alpha": 150.0, "beta": 20.0, "gamma": 5.0}
        assert balancer.hedge_candidates(loads, exclude=("alpha",)) == [
            "gamma", "beta"
        ]

    def test_silent_hosts_are_never_candidates(self, trio):
        balancer = LoadBalancer(trio)
        loads = {"beta": float("inf"), "gamma": 30.0}
        assert balancer.hedge_candidates(loads) == ["gamma"]

    def test_no_candidates_raises(self, trio):
        balancer = LoadBalancer(trio)
        with pytest.raises(MageError):
            balancer.hedge_candidates({"beta": float("inf")})


class TestHedgedRebalance:
    def test_hedged_rebalance_offloads_large_object(self, make_cluster):
        cluster = make_cluster(["alpha", "beta", "gamma"],
                               stream_threshold=4 * 1024,
                               chunk_bytes=16 * 1024)
        cluster["alpha"].register("bulk", Bulk())
        cluster["alpha"].set_load(150.0)
        cluster["beta"].set_load(10.0)
        cluster["gamma"].set_load(20.0)
        balancer = LoadBalancer(cluster, threshold=100.0)
        landed = balancer.rebalance("bulk", hedge=True)
        assert landed in ("beta", "gamma")
        assert cluster[landed].namespace.store.contains("bulk")
        assert not cluster["alpha"].namespace.store.contains("bulk")
        # Two-phase frames were used and no staging leaked anywhere.
        kinds = [e.kind for e in cluster.trace.events() if not e.local]
        assert "TRANSFER_COMMIT" in kinds
        for node in cluster:
            assert node.namespace.mover.staging_count() == 0

    def test_all_peers_silent_stays_put(self, make_cluster):
        """Every peer priced inf (overloaded-by-silence) degrades to
        stay-put — never raises, never targets a silent host."""
        cluster = make_cluster(["alpha", "beta", "gamma"])
        from repro.bench.workloads import Counter
        cluster["alpha"].register("c", Counter())
        balancer = LoadBalancer(cluster, threshold=100.0)
        balancer.snapshot = lambda: {"alpha": 150.0,
                                     "beta": float("inf"),
                                     "gamma": float("inf")}
        assert balancer.rebalance("c", hedge=True) == "alpha"
        assert balancer.rebalance("c") == "alpha"
        assert cluster["alpha"].namespace.store.contains("c")

    def test_no_peers_at_all_raises(self, make_cluster):
        cluster = make_cluster(["alpha"])
        from repro.bench.workloads import Counter
        cluster["alpha"].register("c", Counter())
        balancer = LoadBalancer(cluster, threshold=100.0)
        balancer.snapshot = lambda: {"alpha": 150.0}
        with pytest.raises(MageError):
            balancer.rebalance("c")

    def test_unhedged_rebalance_unchanged(self, make_cluster):
        cluster = make_cluster(["alpha", "beta"])
        from repro.bench.workloads import Counter
        cluster["alpha"].register("c", Counter())
        cluster["alpha"].set_load(150.0)
        cluster["beta"].set_load(10.0)
        balancer = LoadBalancer(cluster, threshold=100.0)
        assert balancer.rebalance("c") == "beta"


class TestStreamedMoveOverTcp:
    def test_streamed_hedged_move_on_real_sockets(self):
        """The whole pipeline — codec frames, windowed chunks, staging,
        hedged commit — over the pipelined TCP transport."""
        net = TcpNetwork(compress_threshold=8 * 1024)
        cluster = Cluster(["n0", "n1", "n2"], transport=net,
                          stream_threshold=4 * 1024, chunk_bytes=16 * 1024)
        try:
            cluster["n0"].register("bulk", Bulk(size=256 * 1024))
            assert cluster["n0"].namespace.move("bulk", "n1") == "n1"
            assert cluster["n1"].namespace.store.get("bulk").payload[:1] == b"b"
            landed = cluster["n1"].namespace.move(
                "bulk", "n2", hedge=True, alternates=("n0",))
            assert landed in ("n0", "n2")
            assert cluster[landed].namespace.store.contains("bulk")
            # The loser's TRANSFER_ABORT is fire-and-forget: give it a
            # moment to land before asserting the staging drained.
            import time
            deadline = time.monotonic() + 5.0
            while (any(n.namespace.mover.staging_count() for n in cluster)
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            for node in cluster:
                assert node.namespace.mover.staging_count() == 0
        finally:
            cluster.shutdown()
