"""Load monitoring, synthetic profiles, and host discovery."""

import pytest

from repro.cluster.load import LoadMonitor, OscillatingProfile, RampProfile


class TestLoadMonitor:
    def test_set_and_get(self):
        monitor = LoadMonitor()
        monitor.set_load(75.0)
        assert monitor.get_load() == 75.0

    def test_initial_value(self):
        assert LoadMonitor(10.0).get_load() == 10.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LoadMonitor().set_load(-1.0)

    def test_profile_overrides_value(self):
        monitor = LoadMonitor(5.0)
        monitor.use_profile(lambda: 99.0)
        assert monitor.get_load() == 99.0

    def test_set_load_removes_profile(self):
        monitor = LoadMonitor()
        monitor.use_profile(lambda: 99.0)
        monitor.set_load(1.0)
        assert monitor.get_load() == 1.0


class TestProfiles:
    def test_ramp_climbs_per_query(self):
        ramp = RampProfile(start=10.0, step=5.0)
        assert [ramp() for _ in range(3)] == [10.0, 15.0, 20.0]

    def test_oscillation_stays_in_bounds(self):
        wave = OscillatingProfile(lo=0.0, hi=200.0, period_queries=8)
        values = [wave() for _ in range(32)]
        assert all(0.0 <= v <= 200.0 for v in values)
        assert max(values) > 150.0  # actually swings
        assert min(values) < 50.0

    def test_oscillation_validates_args(self):
        with pytest.raises(ValueError):
            OscillatingProfile(period_queries=0)
        with pytest.raises(ValueError):
            OscillatingProfile(lo=10.0, hi=5.0)


class TestDiscovery:
    def test_hosts_and_peers(self, trio):
        discovery = trio["alpha"].discovery
        assert discovery.hosts() == ["alpha", "beta", "gamma"]
        assert discovery.peers() == ["beta", "gamma"]

    def test_liveness(self, trio):
        discovery = trio["alpha"].discovery
        assert discovery.is_alive("beta")
        trio.crash("beta")
        assert not discovery.is_alive("beta")
        assert discovery.alive_peers() == ["gamma"]

    def test_loads(self, trio):
        trio["beta"].set_load(30.0)
        trio["gamma"].set_load(70.0)
        loads = trio["alpha"].discovery.loads()
        assert loads == {"beta": 30.0, "gamma": 70.0}

    def test_least_loaded(self, trio):
        trio["beta"].set_load(30.0)
        trio["gamma"].set_load(70.0)
        assert trio["alpha"].discovery.least_loaded() == "beta"

    def test_least_loaded_skips_dead_hosts(self, trio):
        trio["beta"].set_load(1.0)
        trio["gamma"].set_load(50.0)
        trio.crash("beta")
        assert trio["alpha"].discovery.least_loaded() == "gamma"

    def test_least_loaded_with_no_candidates(self, pair):
        from repro.errors import MageError

        pair.crash("beta")
        with pytest.raises(MageError):
            pair["alpha"].discovery.least_loaded()

    def test_node_load_plumbs_to_queries(self, pair):
        """Node.set_load → LOAD_QUERY → discovery, end to end."""
        pair["beta"].load_monitor.use_profile(RampProfile(100.0, 0.0))
        assert pair["alpha"].namespace.query_load("beta") == 100.0
