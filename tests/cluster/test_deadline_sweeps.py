"""Cluster-layer deadlines: one budget per fan-out, silence as a signal.

* ``Cluster.broadcast`` / ``query_all_loads`` / ``locate`` and the
  ``DiscoveryService`` sweeps take one shared deadline for the whole
  fan-out (instead of per-node timeouts);
* ``LoadBalancer(probe_timeout_ms=...)`` prices a host that misses the
  probe window at ``inf`` — overloaded-by-silence, so it counts against
  the threshold and is never picked as a migration target — while an
  outright-dead host still drops out of the snapshot.
"""

import threading
import time

import pytest

from repro.cluster import Cluster
from repro.cluster.load import LoadBalancer
from repro.errors import CallCancelledError, CallTimeoutError
from repro.net.deadline import Deadline
from repro.net.message import MessageKind
from repro.net.tcpnet import TcpNetwork


class Widget:
    def __init__(self):
        self.value = 0


@pytest.fixture
def stalled_cluster():
    """Three TCP nodes; 'slow' answers everything after a 600 ms stall."""
    net = TcpNetwork(io_timeout_s=5.0)
    release = threading.Event()
    cluster = Cluster(["ctrl", "slow", "fast"], transport=net)
    inner = cluster["slow"].namespace.external.handle

    def stalled(message):
        release.wait(0.6)
        return inner(message)

    net.register("slow", stalled)
    yield cluster
    release.set()
    cluster.shutdown()


class TestBroadcastDeadline:
    def test_one_window_for_the_whole_fanout(self, stalled_cluster):
        cluster = stalled_cluster
        start = time.perf_counter()
        outcomes = cluster.broadcast(
            MessageKind.PING, return_exceptions=True,
            deadline=Deadline.after_ms(250),
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 0.55, f"sweep outlived its budget: {elapsed:.2f}s"
        assert outcomes["ctrl"] == "pong"
        assert outcomes["fast"] == "pong"
        assert isinstance(outcomes["slow"],
                          (CallTimeoutError, CallCancelledError))

    def test_unbounded_broadcast_unchanged(self, make_cluster):
        cluster = make_cluster(["a", "b"])
        outcomes = cluster.broadcast(MessageKind.PING)
        assert outcomes == {"a": "pong", "b": "pong"}


class TestDiscoveryDeadline:
    def test_alive_peers_counts_the_silent_host_dead(self, stalled_cluster):
        discovery = stalled_cluster["ctrl"].discovery
        assert discovery.alive_peers(
            deadline=Deadline.after_ms(250)) == ["fast"]

    def test_unbounded_sweep_waits_the_stall_out(self, stalled_cluster):
        discovery = stalled_cluster["ctrl"].discovery
        assert discovery.alive_peers() == ["fast", "slow"]


class TestLoadBalancerSilenceSignal:
    def test_expired_probe_prices_the_host_overloaded(self, stalled_cluster):
        cluster = stalled_cluster
        for node_id, load in (("ctrl", 20.0), ("slow", 5.0), ("fast", 50.0)):
            cluster[node_id].set_load(load)
        balancer = LoadBalancer(cluster, threshold=100.0,
                                probe_timeout_ms=250.0)
        loads = balancer.snapshot()
        # The stalled host advertises the *lowest* load, but silence wins:
        # it is priced inf, flagged overloaded, and never chosen.
        assert loads["slow"] == float("inf")
        assert loads["ctrl"] == 20.0 and loads["fast"] == 50.0
        assert balancer.overloaded(loads) == ["slow"]
        assert balancer.least_loaded(loads) == "ctrl"

    def test_dead_host_still_drops_out(self, stalled_cluster):
        cluster = stalled_cluster
        cluster["fast"].shutdown()
        balancer = LoadBalancer(cluster, threshold=100.0,
                                probe_timeout_ms=250.0)
        loads = balancer.snapshot()
        assert "fast" not in loads          # unreachable: not a candidate
        assert loads["slow"] == float("inf")  # silent: overloaded

    def test_rebalance_never_targets_the_silent_host(self, stalled_cluster):
        cluster = stalled_cluster
        cluster["ctrl"].register("w", Widget(), shared=True)
        cluster["ctrl"].set_load(500.0)   # overloaded
        cluster["slow"].set_load(0.0)     # tempting but silent
        cluster["fast"].set_load(10.0)
        balancer = LoadBalancer(cluster, threshold=100.0,
                                probe_timeout_ms=250.0)
        assert balancer.rebalance("w") == "fast"

    def test_without_probe_timeout_behaviour_is_unchanged(self, make_cluster):
        cluster = make_cluster(["a", "b"])
        cluster["a"].set_load(120.0)
        cluster["b"].set_load(10.0)
        balancer = LoadBalancer(cluster, threshold=100.0)
        assert balancer.overloaded() == ["a"]
        assert balancer.least_loaded() == "b"


class TestClusterLocateDeadline:
    def test_locate_with_deadline_skips_the_stall(self, stalled_cluster):
        cluster = stalled_cluster
        cluster["fast"].register("w", Widget(), shared=True)
        start = time.perf_counter()
        assert cluster.locate("w", deadline=Deadline.after_s(5)) == "fast"
        assert time.perf_counter() - start < 0.5
