"""Membership: seed-list join, ANNOUNCE propagation, heartbeat liveness.

Cross-"host" cases run two or three ``TcpNetwork`` instances in one test
process — separate registries, real sockets — so joins and announcements
provably travel the wire.  Determinism-sensitive cases drive the failure
detector by calling ``heartbeat_once`` directly instead of racing the
background thread.
"""

import pytest

from repro.cluster import Cluster, DiscoveryService, LoadBalancer, Membership, Node
from repro.errors import MageError
from repro.net import TcpNetwork


@pytest.fixture
def harness():
    """Factory for Nodes on isolated TCP transports, torn down together."""
    nets, nodes = [], []

    def factory(node_id, **node_kwargs):
        net = TcpNetwork()
        node = Node(node_id, net, **node_kwargs)
        nets.append(net)
        nodes.append(node)
        return node, net

    yield factory
    for node in nodes:
        node.shutdown()
    for net in nets:
        net.shutdown()


def kill_heartbeats(membership, peer):
    """Drive the detector to a death verdict for ``peer`` (no threads)."""
    membership.heartbeat_timeout_ms = 300
    for _ in range(membership.suspect_after):
        membership.heartbeat_once()


class TestJoin:
    def test_seed_join_merges_both_rosters(self, harness):
        hub, hub_net = harness("hub")
        worker, worker_net = harness("worker")
        learned = worker.join("hub", hub_net.endpoint_of("hub"))
        assert learned == ["hub", "worker"]
        assert hub.membership.hosts() == ["hub", "worker"]
        # Both transports can now dial each other.
        assert hub.namespace.server.ping("worker")
        assert worker.namespace.server.ping("hub")

    def test_join_announces_newcomer_to_existing_members(self, harness):
        hub, hub_net = harness("hub")
        w1, w1_net = harness("w1")
        w2, w2_net = harness("w2")
        w1.join("hub", hub_net.endpoint_of("hub"))
        w2.join("hub", hub_net.endpoint_of("hub"))
        # w1 never met w2, yet the hub's ANNOUNCE taught it the address.
        assert "w2" in w1.membership.hosts()
        assert w1.namespace.server.ping("w2")

    def test_rejoin_with_new_endpoint_revives_and_rewires(self, harness):
        hub, hub_net = harness("hub")
        worker, worker_net = harness("worker")
        worker.join("hub", hub_net.endpoint_of("hub"))
        worker_net.shutdown()
        kill_heartbeats(hub.membership, "worker")
        assert hub.membership.is_dead("worker")

        reborn, reborn_net = harness("worker")  # same identity, fresh port
        reborn.join("hub", hub_net.endpoint_of("hub"))
        assert not hub.membership.is_dead("worker")
        assert hub.membership.hosts() == ["hub", "worker"]
        assert hub_net.endpoint_of("worker") == reborn_net.endpoint_of("worker")
        assert hub.namespace.server.ping("worker")

    def test_join_against_membershipless_namespace_raises(self, harness):
        hub, hub_net = harness("hub")
        # A bare namespace (no Node => no Membership) refuses JOINs.
        from repro.runtime.namespace import Namespace
        bare_net = TcpNetwork()
        try:
            Namespace("bare", bare_net)
            worker, worker_net = harness("worker")
            worker.namespace.transport.connect(
                "bare", bare_net.endpoint_of("bare"))
            with pytest.raises(MageError):
                worker.membership.join("bare")
        finally:
            bare_net.shutdown()

    def test_leave_forgets_cleanly_without_death_verdict(self, harness):
        hub, hub_net = harness("hub")
        worker, worker_net = harness("worker")
        worker.join("hub", hub_net.endpoint_of("hub"))
        hub.membership.leave("worker")
        assert "worker" not in hub.membership.hosts()
        assert not hub.membership.is_dead("worker")
        assert hub_net.endpoint_of("worker") is None


class TestHeartbeat:
    def test_single_miss_is_not_death(self, harness):
        hub, hub_net = harness("hub")
        worker, worker_net = harness("worker")
        worker.join("hub", hub_net.endpoint_of("hub"))
        worker_net.shutdown()
        hub.membership.heartbeat_timeout_ms = 300
        hub.membership.heartbeat_once()
        assert not hub.membership.is_dead("worker")
        assert "worker" in hub.membership.hosts()

    def test_consecutive_misses_declare_dead_and_prune(self, harness):
        hub, hub_net = harness("hub")
        worker, worker_net = harness("worker")
        worker.join("hub", hub_net.endpoint_of("hub"))
        assert hub.namespace.server.ping("worker")
        # A forwarding hint pointing at the departed host...
        hub.namespace.registry.note_location("ghost-object", "worker")
        worker_net.shutdown()
        kill_heartbeats(hub.membership, "worker")
        assert hub.membership.dead() == {"worker"}
        assert hub.membership.hosts() == ["hub"]
        # ...is evicted, and the transport carries no per-peer state.
        assert hub.namespace.registry.forwarding_hint("ghost-object") is None
        assert hub_net.link_latency_s("worker") is None
        assert hub_net.endpoint_of("worker") is None

    def test_recovering_peer_resets_miss_count(self, harness):
        hub, hub_net = harness("hub")
        worker, worker_net = harness("worker")
        worker.join("hub", hub_net.endpoint_of("hub"))
        m = hub.membership
        m.heartbeat_timeout_ms = 300
        m._misses["worker"] = m.suspect_after - 1  # one miss from death
        answers = m.heartbeat_once()  # worker answers: counter resets
        assert answers["worker"]
        assert m._misses.get("worker") is None

    def test_on_death_callback_fires_once(self, harness):
        hub, hub_net = harness("hub")
        worker, worker_net = harness("worker")
        worker.join("hub", hub_net.endpoint_of("hub"))
        verdicts = []
        hub.membership.on_death(verdicts.append)
        worker_net.shutdown()
        kill_heartbeats(hub.membership, "worker")
        hub.membership.declare_dead("worker")  # idempotent
        assert verdicts == ["worker"]

    def test_background_thread_starts_and_stops(self, harness):
        hub, hub_net = harness("hub")
        hub.membership.start_heartbeat(interval_s=0.05)
        hub.membership.start_heartbeat()  # idempotent
        hub.membership.stop()
        assert hub.membership._thread is None


class TestBalancerIntegration:
    def test_dead_host_is_never_a_migration_target(self, harness):
        hub, hub_net = harness("hub")
        worker, worker_net = harness("worker")
        worker.join("hub", hub_net.endpoint_of("hub"))
        hub.set_load(10)
        worker.set_load(5)
        # The balancer only needs an issuer and a sweep; membership
        # supplies the live-host view covering the cross-transport peer.
        hub_cluster = _ClusterView(hub)
        balancer = LoadBalancer(hub_cluster, membership=hub.membership,
                                threshold=50)
        assert balancer.snapshot() == {"hub": 10.0, "worker": 5.0}
        worker_net.shutdown()
        kill_heartbeats(hub.membership, "worker")
        snapshot = balancer.snapshot()
        assert "worker" not in snapshot
        assert balancer.hedge_candidates(snapshot) == ["hub"]

    def test_membershipless_balancer_sweeps_cluster_nodes(self):
        with Cluster(["a", "b"]) as cluster:
            cluster["a"].set_load(1)
            cluster["b"].set_load(2)
            balancer = LoadBalancer(cluster)
            assert balancer.snapshot() == {"a": 1.0, "b": 2.0}


class _ClusterView:
    """The minimal cluster surface LoadBalancer needs, over one Node."""

    def __init__(self, node):
        self._node = node

    def issuer(self, src=None):
        return self._node

    def node_ids(self):
        return [self._node.node_id]

    def query_all_loads(self, src=None, deadline=None, timeout_load=None,
                        targets=None):
        swept = targets if targets is not None else self.node_ids()
        return self._node.namespace.server.query_load_many(
            swept, skip_unreachable=True, deadline=deadline,
            timeout_load=timeout_load,
        )


class TestCompatibility:
    def test_discovery_service_alias_still_constructs(self):
        with Cluster(["a", "b"]) as cluster:
            service = DiscoveryService(cluster["a"].namespace)
            assert isinstance(service, Membership)
            assert service.hosts() == ["a", "b"]
            assert service.peers() == ["b"]
            assert service.alive_peers() == ["b"]

    def test_membership_on_simulated_network(self):
        """Joins work in process too: endpoints are None, the roster
        still merges, and crashed nodes are detected by heartbeat."""
        with Cluster(["a", "b", "c"]) as cluster:
            m = cluster["a"].membership
            assert m.hosts() == ["a", "b", "c"]
            assert m.roster() == {"a": None, "b": None, "c": None}
            cluster.crash("c")
            kill_heartbeats(m, "c")
            assert m.dead() == {"c"}
            assert m.hosts() == ["a", "b"]
            cluster.recover("c")
            m._merge({"c": None})  # an announce naming it revives it
            assert m.hosts() == ["a", "b", "c"]
