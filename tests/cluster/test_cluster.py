"""Cluster bring-up, growth, fault plumbing, and transports."""

import pytest

from repro.cluster import Cluster
from repro.errors import ConfigurationError, NodeUnreachableError
from repro.net.simnet import SimNetwork
from repro.net.tcpnet import TcpNetwork
from repro.bench.workloads import Counter


class TestConstruction:
    def test_needs_nodes(self):
        with pytest.raises(ConfigurationError):
            Cluster([])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            Cluster(["a", "a"])

    def test_default_transport_is_sim(self, make_cluster):
        cluster = make_cluster(["a", "b"])
        assert isinstance(cluster.transport, SimNetwork)

    def test_unknown_transport(self):
        with pytest.raises(ConfigurationError):
            Cluster(["a"], transport="carrier-pigeon")

    def test_conflicting_config_rejected(self):
        from repro.net.conditions import ConstantLatency

        net = SimNetwork()
        try:
            with pytest.raises(ConfigurationError):
                Cluster(["a"], transport=net, latency=ConstantLatency())
        finally:
            net.shutdown()

    def test_tcp_rejects_loss_models(self):
        from repro.net.conditions import BernoulliLoss

        with pytest.raises(ConfigurationError):
            Cluster(["a"], transport="tcp", loss=BernoulliLoss(0.1))


class TestAccess:
    def test_lookup_and_len(self, trio):
        assert trio["alpha"].node_id == "alpha"
        assert len(trio) == 3
        assert trio.node_ids() == ["alpha", "beta", "gamma"]

    def test_unknown_node(self, trio):
        with pytest.raises(ConfigurationError):
            trio.node("zeta")

    def test_iteration(self, trio):
        assert {node.node_id for node in trio} == {"alpha", "beta", "gamma"}


class TestGrowth:
    def test_add_node_joins_the_network(self, pair):
        """'Systems joining' (§1): a new namespace is reachable at once."""
        pair.add_node("gamma")
        pair["alpha"].register("c", Counter())
        assert pair["gamma"].find("c", origin_hint="alpha") == "alpha"

    def test_duplicate_add_rejected(self, pair):
        with pytest.raises(ConfigurationError):
            pair.add_node("alpha")


class TestFaults:
    def test_crash_recover_round_trip(self, pair):
        pair["beta"].register("c", Counter())
        pair.crash("beta")
        with pytest.raises(NodeUnreachableError):
            pair["alpha"].stub("c", location="beta").get()
        pair.recover("beta")
        assert pair["alpha"].stub("c", location="beta").get() == 0

    def test_partition_blocks_only_that_link(self, trio):
        trio["gamma"].register("c", Counter())
        trio.partition("alpha", "gamma")
        with pytest.raises(NodeUnreachableError):
            trio["alpha"].stub("c", location="gamma").get()
        # beta still reaches gamma.
        assert trio["beta"].stub("c", location="gamma").get() == 0
        trio.heal("alpha", "gamma")
        assert trio["alpha"].stub("c", location="gamma").get() == 0

    def test_fault_injection_requires_simnet(self):
        cluster = Cluster(["a", "b"], transport="tcp")
        try:
            with pytest.raises(ConfigurationError):
                cluster.crash("a")
        finally:
            cluster.shutdown()


class TestTcpCluster:
    def test_full_stack_over_tcp(self):
        """The same runtime, real sockets: register, move, invoke."""
        cluster = Cluster(["lab", "field"], transport="tcp")
        try:
            assert isinstance(cluster.transport, TcpNetwork)
            cluster["lab"].register("c", Counter(5))
            cluster["lab"].namespace.move("c", "field")
            stub = cluster["lab"].stub("c", location="field")
            assert stub.increment() == 6
            assert cluster["lab"].find("c") == "field"
        finally:
            cluster.shutdown()

    def test_shutdown_is_idempotent(self):
        cluster = Cluster(["a"], transport="tcp")
        cluster.shutdown()
        cluster.shutdown()


class TestContextManager:
    def test_with_block_tears_down(self):
        with Cluster(["a", "b"]) as cluster:
            cluster["a"].register("c", Counter())
        assert not cluster["a"].namespace.running
