"""Deadline-aware retry budgets: retries scale to the remaining budget."""

import pytest

from repro.errors import CallTimeoutError, MessageLostError
from repro.net.conditions import LossModel
from repro.net.deadline import Deadline
from repro.net.message import MessageKind
from repro.net.simnet import SimNetwork


class CountingBlackhole(LossModel):
    """Drops every remote transmission, counting the attempts."""

    def __init__(self):
        self.attempts = 0

    def should_drop(self, message, attempt):
        if message.is_local:
            return False
        self.attempts += 1
        return True


@pytest.fixture
def blackhole():
    loss = CountingBlackhole()
    net = SimNetwork(loss=loss)
    net.register("a", lambda m: "pong")
    net.register("b", lambda m: "pong")
    return net, loss


class TestDeadlineAwareRetries:
    def test_no_deadline_spends_the_full_budget(self, blackhole):
        net, loss = blackhole
        with pytest.raises(MessageLostError):
            net.call("a", "b", MessageKind.PING)
        assert loss.attempts == net.retry_budget + 1

    def test_generous_deadline_spends_the_full_budget(self, blackhole):
        net, loss = blackhole
        with pytest.raises(MessageLostError):
            net.call("a", "b", MessageKind.PING,
                     deadline=Deadline.after_s(30))
        assert loss.attempts == net.retry_budget + 1

    def test_almost_expired_call_retries_at_most_once(self, blackhole):
        """The regression bar: a call with under one attempt-cost of budget
        left must not queue ``retry_budget`` retransmissions — it stops
        after at most one retry and surfaces the timeout."""
        net, loss = blackhole
        with pytest.raises(CallTimeoutError):
            net.call("a", "b", MessageKind.PING,
                     deadline=Deadline.after_ms(0.5))
        assert loss.attempts <= 2

    def test_expired_deadline_never_touches_the_wire(self, blackhole):
        net, loss = blackhole
        with pytest.raises(CallTimeoutError):
            net.call("a", "b", MessageKind.PING,
                     deadline=Deadline.after_ms(0))
        assert loss.attempts == 0

    def test_link_ewma_prices_the_retry(self, blackhole):
        """A link known to cost ~200 ms refuses a retry on a 50 ms budget
        even though the flat floor alone would have allowed it."""
        net, loss = blackhole
        net.track_link_latency = True
        net.note_link_latency("b", 0.2)
        with pytest.raises(CallTimeoutError):
            net.call("a", "b", MessageKind.PING,
                     deadline=Deadline.after_ms(50))
        assert loss.attempts == 1
