"""Transparent auto-batching on the pipelined TCP call path.

Covers the coalescing client (reply-clocked flush, the kick safety
valve), the aggregating server (parallel sub dispatch, one reply frame),
reply-id uniqueness under aggregation, failure isolation between
coalesced sub-calls, at-most-once across retransmission, mixed-version
interop, and the declared-inline dispatch fast path.
"""

import threading
import time

import pytest

from repro.errors import CallTimeoutError
from repro.net.deadline import Deadline
from repro.net.endpoint import PROTOCOL_VERSION, Hello
from repro.net.message import (
    Message,
    MessageKind,
    ReplyPayload,
    inline_safe,
)
from repro.net.tcpnet import (
    _AUTOBATCH_SETTING,
    _AUTOBATCH_TOKEN,
    _INLINE_DEMOTE_STRIKES,
    _Channel,
    _hello_accepts_autobatch,
    TcpNetwork,
)
from repro.net.transport import ReplyCache, Transport, gather


@pytest.fixture
def net():
    network = TcpNetwork()
    yield network
    network.shutdown()


class _Gate:
    """Server handler whose ``hang`` payload parks until released.

    Holding one call in flight keeps the client's reply clock busy, so
    every call issued meanwhile queues in the auto-batcher — the
    deterministic way to force a coalesced frame in tests.
    """

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()

    def __call__(self, message):
        if message.payload == "hang":
            self.started.set()
            self.release.wait(5.0)
            return "hung"
        if message.payload == "boom":
            raise ValueError("sub failed")
        if isinstance(message.payload, (int, float)):
            return message.payload + 10
        return message.payload

    def open(self, net, src="a", dst="b"):
        """Register, warm the channel, and park one call in flight."""
        net.register(src, lambda m: None)
        net.register(dst, self)
        net.call(src, dst, MessageKind.PING, 0)
        hung = net.call_async(src, dst, MessageKind.PING, "hang")
        assert self.started.wait(5.0)
        return hung

    def drain(self, hung):
        self.release.set()
        assert hung.result(timeout_s=5.0) == "hung"


class TestAutoBatchFormation:
    def test_backlog_coalesces_into_one_frame(self, net):
        gate = _Gate()
        hung = gate.open(net)
        futures = [
            net.call_async("a", "b", MessageKind.PING, i) for i in range(4)
        ]
        assert gather(futures) == [10, 11, 12, 13]
        gate.drain(hung)
        stats = net.data_plane_metrics()
        assert stats.auto_batches == 1
        assert stats.auto_batched_msgs == 4
        assert stats.auto_batch_per_frame == {4: 1}

    def test_lone_calls_are_never_delayed_or_batched(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: m.payload)
        for i in range(10):
            assert net.call("a", "b", MessageKind.PING, i) == i
        stats = net.data_plane_metrics()
        assert stats.auto_batches == 0
        assert stats.auto_batched_msgs == 0

    def test_kick_flushes_queue_without_reply_clock(self, net):
        """A queued call behind a stuck round trip must not wait for the
        stuck reply: its waiter kicks the batcher after a short grace."""
        gate = _Gate()
        hung = gate.open(net)
        start = time.perf_counter()
        assert net.call("a", "b", MessageKind.PING, 5) == 15
        elapsed = time.perf_counter() - start
        assert not gate.release.is_set()  # the clock really was stuck
        assert elapsed < 2.0
        gate.drain(hung)


class TestReplyIdUniqueness:
    def test_sub_reply_ids_are_derived_and_distinct(self):
        request = Message(
            kind=MessageKind.AUTO_BATCH, src="a", dst="b", payload=()
        )
        aggregate = request.reply(ReplyPayload(value=()))
        sub_ids = ("msg-1", "msg-2")
        replies = [
            _Channel._sub_reply(aggregate, sub_id, ReplyPayload(value=sub_id))
            for sub_id in sub_ids
        ]
        # The aggregate's own reply id and each synthesized sub reply id
        # never collide — exactly what N unbatched replies would carry.
        assert len({aggregate.msg_id, *(r.msg_id for r in replies)}) == 3
        for sub_id, reply in zip(sub_ids, replies):
            assert reply.msg_id == f"{sub_id}-r"
            assert reply.reply_to_id == sub_id
            assert reply.kind is MessageKind.REPLY

    def test_colliding_sub_ids_execute_at_most_once(self):
        """Regression: two subs sharing a message id inside one aggregate
        must not double-execute — the second replays the first's reply."""
        cache = ReplyCache()
        executed = []

        def handler(message):
            executed.append(message.payload)
            return message.payload

        subs = tuple(
            Message(kind=MessageKind.PING, src="a", dst="b",
                    payload=payload, msg_id="dup-id")
            for payload in ("x", "y")
        )
        batch = Message(
            kind=MessageKind.AUTO_BATCH, src="a", dst="b", payload=subs
        )
        reply = Transport.execute_handler(batch, handler, cache)
        assert [sub_id for sub_id, _ in reply.value] == ["dup-id", "dup-id"]
        assert [p.value for _, p in reply.value] == ["x", "x"]
        assert executed == ["x"]


class TestFailureIsolation:
    def test_raising_sub_leaves_siblings_intact(self, net):
        gate = _Gate()
        hung = gate.open(net)
        bad = net.call_async("a", "b", MessageKind.PING, "boom")
        good = [net.call_async("a", "b", MessageKind.PING, i) for i in (1, 2)]
        assert [f.result(timeout_s=5.0) for f in good] == [11, 12]
        with pytest.raises(ValueError, match="sub failed"):
            bad.result(timeout_s=5.0)
        gate.drain(hung)
        assert net.data_plane_metrics().auto_batches >= 1

    def test_expired_deadline_sub_does_not_poison_siblings(self, net):
        gate = _Gate()
        hung = gate.open(net)
        doomed = net.call_async("a", "b", MessageKind.PING, 1,
                                deadline=Deadline.after_ms(5))
        good = net.call_async("a", "b", MessageKind.PING, 2)
        assert good.result(timeout_s=5.0) == 12
        with pytest.raises(CallTimeoutError):
            doomed.result(timeout_s=5.0)
        gate.drain(hung)

    def test_batched_slow_subs_overlap_server_side(self, net):
        """The server fans an aggregate back out across its pool: a slow
        sub must not serialize its coalesced siblings."""
        release = threading.Event()
        started = threading.Event()

        def handler(message):
            if message.payload == "hang":
                started.set()
                release.wait(5.0)
                return "hung"
            time.sleep(0.15)
            return message.payload

        net.register("a", lambda m: None)
        net.register("b", handler)
        net.call("a", "b", MessageKind.PING, "warm")
        hung = net.call_async("a", "b", MessageKind.PING, "hang")
        assert started.wait(5.0)
        start = time.perf_counter()
        futures = [
            net.call_async("a", "b", MessageKind.PING, i) for i in range(3)
        ]
        assert gather(futures) == [0, 1, 2]
        elapsed = time.perf_counter() - start
        release.set()
        assert hung.result(timeout_s=5.0) == "hung"
        # Three 150 ms subs in one aggregate: parallel ~0.15 s, serial 0.45 s.
        assert elapsed < 0.4, elapsed

    def test_retransmitted_aggregate_replays_cached_replies(self):
        """At-most-once per sub-id survives a whole-aggregate replay."""
        cache = ReplyCache()
        executed = []

        def handler(message):
            executed.append(message.payload)
            return message.payload * 10

        subs = tuple(
            Message(kind=MessageKind.PING, src="a", dst="b", payload=p)
            for p in (1, 2, 3)
        )
        batch = Message(
            kind=MessageKind.AUTO_BATCH, src="a", dst="b", payload=subs
        )
        first = Transport.execute_handler(batch, handler, cache)
        second = Transport.execute_handler(batch, handler, cache)
        expected = [(sub.msg_id, sub.payload * 10) for sub in subs]
        for reply in (first, second):
            assert [(sid, p.value) for sid, p in reply.value] == expected
        assert executed == [1, 2, 3]  # each sub ran exactly once

    def test_failing_sub_does_not_stop_the_rest(self):
        """Unlike BATCH (sequential, fail-fast), coalesced calls are
        independent: every sub runs, errors stay with their own sub."""
        cache = ReplyCache()
        executed = []

        def handler(message):
            executed.append(message.payload)
            if message.payload == "bad":
                raise RuntimeError("sub failed")
            return message.payload

        subs = tuple(
            Message(kind=MessageKind.PING, src="a", dst="b", payload=p)
            for p in ("ok", "bad", "after")
        )
        batch = Message(
            kind=MessageKind.AUTO_BATCH, src="a", dst="b", payload=subs
        )
        reply = Transport.execute_handler(batch, handler, cache)
        assert [p.is_error for _, p in reply.value] == [False, True, False]
        assert executed == ["ok", "bad", "after"]


def _link(a, a_node, b, b_node):
    a.connect(b_node, b.endpoint_of(b_node))
    b.connect(a_node, a.endpoint_of(a_node))


class TestMixedVersionInterop:
    def test_hello_negotiation(self):
        accepting = Hello(
            version=PROTOCOL_VERSION, node_id="n",
            settings={_AUTOBATCH_SETTING: _AUTOBATCH_TOKEN},
        )
        assert _hello_accepts_autobatch(accepting, PROTOCOL_VERSION)
        assert not _hello_accepts_autobatch(None, PROTOCOL_VERSION)
        assert not _hello_accepts_autobatch(
            Hello(version=PROTOCOL_VERSION, node_id="n"), PROTOCOL_VERSION
        )
        assert not _hello_accepts_autobatch(accepting, PROTOCOL_VERSION + 1)

    def _pressure(self, client, src, dst, gate):
        """Run the coalescing-pressure pattern against a remote server."""
        client.call(src, dst, MessageKind.PING, 0)
        hung = client.call_async(src, dst, MessageKind.PING, "hang")
        assert gate.started.wait(5.0)
        futures = [
            client.call_async(src, dst, MessageKind.PING, i) for i in range(4)
        ]
        assert gather(futures) == [10, 11, 12, 13]
        gate.release.set()
        assert hung.result(timeout_s=5.0) == "hung"

    def test_legacy_server_gets_per_call_frames(self):
        """A peer built without auto-batching negotiates it away: the
        modern client's backlog flushes as plain per-call frames."""
        modern = TcpNetwork()
        legacy = TcpNetwork(auto_batch=False)
        try:
            gate = _Gate()
            modern.register("hub", lambda m: None)
            legacy.register("old", gate)
            _link(modern, "hub", legacy, "old")
            self._pressure(modern, "hub", "old", gate)
            assert modern.data_plane_metrics().auto_batches == 0
            kinds = {e.kind for e in legacy.trace.events()}
            assert not any("AUTO_BATCH" in kind for kind in kinds)
        finally:
            modern.shutdown()
            legacy.shutdown()

    def test_modern_peers_negotiate_aggregation(self):
        client = TcpNetwork()
        server = TcpNetwork()
        try:
            gate = _Gate()
            client.register("hub", lambda m: None)
            server.register("srv", gate)
            _link(client, "hub", server, "srv")
            self._pressure(client, "hub", "srv", gate)
            assert client.data_plane_metrics().auto_batches >= 1
            kinds = {e.kind for e in server.trace.events()}
            assert "AUTO_BATCH" in kinds
        finally:
            client.shutdown()
            server.shutdown()

    def test_pre_handshake_peer_keeps_working(self):
        """No HELLO at all (a pre-handshake build): the capability is
        never negotiated and every call still completes."""
        net = TcpNetwork(handshake=False)
        try:
            gate = _Gate()
            hung = gate.open(net)
            futures = [
                net.call_async("a", "b", MessageKind.PING, i)
                for i in range(4)
            ]
            assert gather(futures) == [10, 11, 12, 13]
            gate.drain(hung)
            assert net.data_plane_metrics().auto_batches == 0
        finally:
            net.shutdown()


class TestInlineDispatch:
    def test_undeclared_handler_never_runs_inline(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: m.payload)  # no inline_safe declaration
        for i in range(5):
            assert net.call("a", "b", MessageKind.PING, i) == i
        assert net.data_plane_metrics().inline_dispatches == 0

    def test_declared_handler_dispatches_inline(self, net):
        net.register("a", lambda m: None)
        net.register("b", inline_safe(lambda m: m.payload))
        for i in range(5):
            assert net.call("a", "b", MessageKind.PING, i) == i
        stats = net.data_plane_metrics()
        assert stats.inline_dispatches == 5
        assert stats.inline_demotions == 0

    def test_non_allowlisted_kind_takes_the_pool(self, net):
        net.register("a", lambda m: None)
        net.register("b", inline_safe(lambda m: m.payload))
        for i in range(3):
            assert net.call("a", "b", MessageKind.FIND, i) == i
        assert net.data_plane_metrics().inline_dispatches == 0

    def test_emulated_latency_disables_inline(self):
        net = TcpNetwork(latency_ms=1.0)
        try:
            net.register("a", lambda m: None)
            net.register("b", inline_safe(lambda m: m.payload))
            assert net.call("a", "b", MessageKind.PING, 7) == 7
            assert net.data_plane_metrics().inline_dispatches == 0
        finally:
            net.shutdown()

    def test_persistent_overruns_demote_the_fast_path(self):
        """A declared handler that keeps blowing its time budget demotes
        this server's inline path permanently — degrade to the pool
        rather than starve the reactor loop."""
        net = TcpNetwork(inline_budget_ms=0.0001)
        try:
            net.register("a", lambda m: None)
            net.register("b", inline_safe(lambda m: sum(range(5000))))
            for _ in range(_INLINE_DEMOTE_STRIKES + 4):
                net.call("a", "b", MessageKind.PING)
            stats = net.data_plane_metrics()
            assert stats.inline_dispatches == _INLINE_DEMOTE_STRIKES
            assert stats.inline_overruns >= _INLINE_DEMOTE_STRIKES
            assert stats.inline_demotions == 1
        finally:
            net.shutdown()
