"""Message-trace recording and queries (the figure-reproduction instrument)."""

from repro.net.message import Message, MessageKind
from repro.net.trace import MessageTrace


def _msg(kind=MessageKind.PING, src="a", dst="b") -> Message:
    return Message(kind=kind, src=src, dst=dst)


class TestRecording:
    def test_sequence_numbers_increase(self):
        trace = MessageTrace()
        trace.record(_msg(), time_ms=0.0)
        trace.record(_msg(), time_ms=1.0)
        first, second = trace.events()
        assert (first.seq, second.seq) == (1, 2)

    def test_reply_kind_rendering(self):
        trace = MessageTrace()
        trace.record(_msg().reply("x"), time_ms=0.0)
        (event,) = trace.events()
        assert event.kind == "REPLY(PING)"

    def test_len_and_clear(self):
        trace = MessageTrace()
        trace.record(_msg(), 0.0)
        trace.record(_msg(), 0.0)
        assert len(trace) == 2
        trace.clear()
        assert len(trace) == 0

    def test_local_flag(self):
        trace = MessageTrace()
        trace.record(_msg(src="a", dst="a"), 0.0)
        assert trace.events()[0].local


class TestQueries:
    def _traced(self) -> MessageTrace:
        trace = MessageTrace()
        trace.record(_msg(MessageKind.FIND, "a", "a"), 0.0)
        trace.record(_msg(MessageKind.INVOKE, "a", "b"), 1.0)
        trace.record(_msg(MessageKind.INVOKE, "a", "b"), 2.0, dropped=True)
        trace.record(_msg(MessageKind.OBJECT_TRANSFER, "b", "c"), 3.0)
        return trace

    def test_filtered_by_kind(self):
        events = self._traced().filtered(kinds=["INVOKE"])
        assert [e.kind for e in events] == ["INVOKE"]

    def test_filtered_remote_only(self):
        events = self._traced().filtered(remote_only=True)
        assert all(not e.local for e in events)
        assert len(events) == 2

    def test_dropped_hidden_by_default(self):
        assert all(not e.dropped for e in self._traced().filtered())

    def test_dropped_visible_on_request(self):
        events = self._traced().filtered(include_dropped=True)
        assert any(e.dropped for e in events)

    def test_kinds_sequence(self):
        assert self._traced().kinds() == ["FIND", "INVOKE", "OBJECT_TRANSFER"]

    def test_summary_excludes_drops(self):
        summary = self._traced().summary()
        assert summary["INVOKE"] == 1

    def test_remote_message_count(self):
        assert self._traced().remote_message_count() == 2

    def test_arrows_format(self):
        arrows = self._traced().arrows()
        assert arrows[0] == "a -> a: FIND"

    def test_dropped_arrow_is_marked(self):
        trace = MessageTrace()
        trace.record(_msg(), 0.0, dropped=True)
        assert "[LOST]" in trace.events()[0].arrow()
