"""Message envelopes and reply construction."""

from repro.net.message import Message, MessageKind, ONEWAY_KINDS, ReplyPayload


class TestMessage:
    def test_reply_swaps_endpoints(self):
        request = Message(kind=MessageKind.PING, src="a", dst="b")
        reply = request.reply("pong")
        assert (reply.src, reply.dst) == ("b", "a")
        assert reply.kind is MessageKind.REPLY
        assert reply.in_reply_to is MessageKind.PING
        assert reply.payload == "pong"

    def test_is_local(self):
        assert Message(kind=MessageKind.FIND, src="a", dst="a").is_local
        assert not Message(kind=MessageKind.FIND, src="a", dst="b").is_local

    def test_fresh_message_ids(self):
        a = Message(kind=MessageKind.PING, src="a", dst="b")
        b = Message(kind=MessageKind.PING, src="a", dst="b")
        assert a.msg_id != b.msg_id

    def test_describe_request(self):
        msg = Message(kind=MessageKind.INVOKE, src="a", dst="b")
        assert msg.describe() == "a -> b: INVOKE"

    def test_describe_reply_names_the_request_kind(self):
        reply = Message(kind=MessageKind.INVOKE, src="a", dst="b").reply(1)
        assert reply.describe() == "b -> a: REPLY(INVOKE)"

    def test_agent_hop_is_oneway(self):
        assert MessageKind.AGENT_HOP in ONEWAY_KINDS

    def test_requests_are_not_oneway(self):
        assert MessageKind.INVOKE not in ONEWAY_KINDS
        assert MessageKind.MOVE_REQUEST not in ONEWAY_KINDS


class TestReplyPayload:
    def test_value_payload(self):
        payload = ReplyPayload(value=42)
        assert not payload.is_error
        assert payload.value == 42

    def test_error_payload(self):
        error = ValueError("boom")
        payload = ReplyPayload(error=error)
        assert payload.is_error
        assert payload.error is error
