"""Per-link latency EWMAs: recording, ranking, and transport opt-in."""

import time

import pytest

from repro.net.message import MessageKind
from repro.net.simnet import SimNetwork
from repro.net.tcpnet import TcpNetwork


class TestOptIn:
    def test_simnet_records_nothing(self):
        """The deterministic transport must not feed wall-clock noise into
        candidate ranking — its exchanges cost virtual time."""
        net = SimNetwork()
        net.register("a", lambda m: "pong")
        net.register("b", lambda m: "pong")
        net.call("a", "b", MessageKind.PING)
        assert net.link_latency_s("b") is None

    def test_rank_is_identity_without_data(self):
        net = SimNetwork()
        assert net.rank_by_latency(["c", "a", "b"]) == ["c", "a", "b"]

    def test_ewma_math(self):
        net = TcpNetwork()
        try:
            net.note_link_latency("n", 1.0)
            assert net.link_latency_s("n") == pytest.approx(1.0)
            net.note_link_latency("n", 0.0)
            assert net.link_latency_s("n") == pytest.approx(0.8)  # alpha 0.2
        finally:
            net.shutdown()

    def test_negative_samples_ignored(self):
        net = TcpNetwork()
        try:
            net.note_link_latency("n", -1.0)
            assert net.link_latency_s("n") is None
        finally:
            net.shutdown()


class TestTcpRecording:
    @pytest.fixture
    def net(self):
        net = TcpNetwork(io_timeout_s=5.0)
        yield net
        net.shutdown()

    def test_slow_host_ranks_behind_fast_host(self, net):
        net.register("issuer", lambda m: "pong")
        net.register("fast", lambda m: "pong")

        def slow_handler(message):
            time.sleep(0.05)
            return "pong"

        net.register("slow", slow_handler)
        for _ in range(3):
            net.call("issuer", "fast", MessageKind.PING)
            net.call("issuer", "slow", MessageKind.PING)
        assert net.link_latency_s("fast") < net.link_latency_s("slow")
        assert net.rank_by_latency(["slow", "fast"]) == ["fast", "slow"]
        # Unknown destinations rank last, in input order.
        assert net.rank_by_latency(["ghost", "slow", "fast"]) == [
            "fast", "slow", "ghost"
        ]
