"""The simulated network: delivery, latency, loss+retry, faults, casts."""

import threading

import pytest

from repro.errors import MessageLostError, NodeUnreachableError
from repro.net.conditions import BernoulliLoss, ConstantLatency, DeterministicLoss
from repro.net.message import MessageKind
from repro.net.simnet import SimNetwork


def echo_handler(message):
    return ("echo", message.payload)


class TestDelivery:
    def test_call_round_trip(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", echo_handler)
        assert net.call("a", "b", MessageKind.PING, 7) == ("echo", 7)

    def test_call_to_unknown_node(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        with pytest.raises(NodeUnreachableError):
            net.call("a", "ghost", MessageKind.PING)

    def test_handler_exception_reraises_at_caller(self):
        net = SimNetwork()
        net.register("a", lambda m: None)

        def boom(message):
            raise KeyError("nope")

        net.register("b", boom)
        with pytest.raises(KeyError):
            net.call("a", "b", MessageKind.PING)

    def test_nodes_listing(self):
        net = SimNetwork()
        net.register("b", echo_handler)
        net.register("a", echo_handler)
        assert net.nodes() == ["a", "b"]

    def test_unregister(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", echo_handler)
        net.unregister("b")
        with pytest.raises(NodeUnreachableError):
            net.call("a", "b", MessageKind.PING)


class TestClockCharging:
    def test_remote_call_costs_one_round_trip(self):
        net = SimNetwork(latency=ConstantLatency(remote_ms=10.0, local_ms=0.0))
        net.register("a", lambda m: None)
        net.register("b", echo_handler)
        net.call("a", "b", MessageKind.PING)
        assert net.clock.now_ms() == 20.0

    def test_local_call_is_nearly_free(self):
        net = SimNetwork(latency=ConstantLatency(remote_ms=10.0, local_ms=0.05))
        net.register("a", echo_handler)
        net.call("a", "a", MessageKind.FIND)
        assert net.clock.now_ms() == pytest.approx(0.1)


class TestTrace:
    def test_request_and_reply_recorded(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", echo_handler)
        net.call("a", "b", MessageKind.PING)
        assert net.trace.kinds() == ["PING", "REPLY(PING)"]


class TestLossAndRetry:
    def test_lost_request_is_retried_transparently(self):
        net = SimNetwork(loss=DeterministicLoss({"PING": 1}))
        net.register("a", lambda m: None)
        net.register("b", echo_handler)
        assert net.call("a", "b", MessageKind.PING, 1) == ("echo", 1)
        dropped = [e for e in net.trace.events() if e.dropped]
        assert len(dropped) == 1

    def test_lost_reply_does_not_reexecute_handler(self):
        calls = []

        def counting_handler(message):
            calls.append(message.msg_id)
            return "done"

        net = SimNetwork(loss=DeterministicLoss({"REPLY": 1}))
        net.register("a", lambda m: None)
        net.register("b", counting_handler)
        assert net.call("a", "b", MessageKind.PING) == "done"
        # Handler ran twice at the transport level but the reply cache must
        # make the second execution a replay: one unique msg_id, handled once.
        assert len(calls) == 1

    def test_retry_budget_exhaustion(self):
        net = SimNetwork(loss=BernoulliLoss(0.999999, seed=3))
        net.retry_budget = 2
        net.register("a", lambda m: None)
        net.register("b", echo_handler)
        with pytest.raises(MessageLostError):
            net.call("a", "b", MessageKind.PING)

    def test_heavy_loss_eventually_succeeds_with_budget(self):
        net = SimNetwork(loss=BernoulliLoss(0.4, seed=11))
        net.retry_budget = 50
        net.register("a", lambda m: None)
        net.register("b", echo_handler)
        for i in range(20):
            assert net.call("a", "b", MessageKind.PING, i) == ("echo", i)


class TestFaultInjection:
    def _net(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", echo_handler)
        return net

    def test_crash_and_recover(self):
        net = self._net()
        net.crash("b")
        with pytest.raises(NodeUnreachableError):
            net.call("a", "b", MessageKind.PING)
        net.recover("b")
        assert net.call("a", "b", MessageKind.PING, 0) == ("echo", 0)

    def test_partition_is_bidirectional(self):
        net = self._net()
        net.register("c", echo_handler)
        net.partition("a", "b")
        with pytest.raises(NodeUnreachableError):
            net.call("a", "b", MessageKind.PING)
        with pytest.raises(NodeUnreachableError):
            net.call("b", "a", MessageKind.PING)
        # Unrelated links unaffected.
        assert net.call("a", "c", MessageKind.PING, 1) == ("echo", 1)

    def test_heal(self):
        net = self._net()
        net.partition("a", "b")
        net.heal("a", "b")
        assert net.call("a", "b", MessageKind.PING, 2) == ("echo", 2)

    def test_heal_all(self):
        net = self._net()
        net.partition("a", "b")
        net.heal_all()
        assert net.call("a", "b", MessageKind.PING, 3) == ("echo", 3)

    def test_reregistering_clears_crash(self):
        net = self._net()
        net.crash("b")
        net.register("b", echo_handler)
        assert net.call("a", "b", MessageKind.PING, 4) == ("echo", 4)


class TestCasts:
    def test_synchronous_cast_executes_inline(self):
        received = []
        net = SimNetwork(synchronous_casts=True)
        net.register("a", lambda m: None)
        net.register("b", lambda m: received.append(m.payload))
        net.cast("a", "b", MessageKind.AGENT_HOP, "state")
        assert received == ["state"]

    def test_async_cast_executes_eventually(self):
        done = threading.Event()
        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", lambda m: done.set())
        net.cast("a", "b", MessageKind.AGENT_HOP)
        assert done.wait(timeout=5.0)
        net.shutdown()

    def test_drain_casts_waits_for_chains(self):
        order = []
        net = SimNetwork()

        def relay(message):
            order.append("b")
            net.cast("b", "c", MessageKind.AGENT_HOP)

        net.register("a", lambda m: None)
        net.register("b", relay)
        net.register("c", lambda m: order.append("c"))
        net.cast("a", "b", MessageKind.AGENT_HOP)
        net.drain_casts(timeout_s=5.0)
        assert order == ["b", "c"]
        net.shutdown()

    def test_cast_failure_is_swallowed(self):
        net = SimNetwork(synchronous_casts=True)
        net.register("a", lambda m: None)

        def boom(message):
            raise RuntimeError("agent died")

        net.register("b", boom)
        net.cast("a", "b", MessageKind.AGENT_HOP)  # must not raise

    def test_cast_to_unreachable_node_traces_a_drop(self):
        net = SimNetwork(synchronous_casts=True)
        net.register("a", lambda m: None)
        net.cast("a", "ghost", MessageKind.AGENT_HOP, "state")  # must not raise
        dropped = [e for e in net.trace.events() if e.dropped]
        assert len(dropped) == 1
        assert dropped[0].kind == "AGENT_HOP"
        assert dropped[0].dst == "ghost"


class TestCallMany:
    def _net(self, **kwargs):
        net = SimNetwork(**kwargs)
        net.register("a", lambda m: None)
        net.register("b", echo_handler)
        return net

    def test_results_in_request_order(self):
        net = self._net()
        values = net.call_many(
            "a", "b", [(MessageKind.PING, i) for i in range(5)]
        )
        assert values == [("echo", i) for i in range(5)]

    def test_empty_batch_sends_nothing(self):
        net = self._net()
        assert net.call_many("a", "b", []) == []
        assert len(net.trace) == 0

    def test_batch_costs_one_round_trip(self):
        net = self._net(latency=ConstantLatency(remote_ms=10.0, local_ms=0.0))
        net.call_many("a", "b", [(MessageKind.PING, i) for i in range(5)])
        # One BATCH frame out, one reply frame back: 20 virtual ms total,
        # not 5 round trips.
        assert net.clock.now_ms() == 20.0
        assert net.trace.kinds() == ["BATCH", "REPLY(BATCH)"]

    def test_subrequest_error_reraises(self):
        def picky(message):
            if message.payload == "bad":
                raise KeyError("nope")
            return message.payload

        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", picky)
        with pytest.raises(KeyError):
            net.call_many(
                "a", "b",
                [(MessageKind.PING, "ok"), (MessageKind.PING, "bad")],
            )

    def test_failed_subrequest_stops_the_batch(self):
        """Fail-fast like the sequence of calls the batch replaces: steps
        after the failing one never execute."""
        executed = []

        def picky(message):
            executed.append(message.payload)
            if message.payload == "bad":
                raise KeyError("nope")
            return message.payload

        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", picky)
        with pytest.raises(KeyError):
            net.call_many(
                "a", "b",
                [
                    (MessageKind.PING, "ok"),
                    (MessageKind.PING, "bad"),
                    (MessageKind.PING, "after"),
                ],
            )
        assert executed == ["ok", "bad"]

    def test_batch_retransmission_is_at_most_once(self):
        calls = []

        def counting_handler(message):
            calls.append(message.msg_id)
            return "done"

        net = SimNetwork(loss=DeterministicLoss({"REPLY": 1}))
        net.register("a", lambda m: None)
        net.register("b", counting_handler)
        values = net.call_many(
            "a", "b", [(MessageKind.PING, 1), (MessageKind.PING, 2)]
        )
        assert values == ["done", "done"]
        # The reply was lost and the whole batch retransmitted, but each
        # sub-request executed exactly once (per-id reply-cache slots).
        assert len(calls) == 2
        assert len(set(calls)) == 2
