"""The schema-compiled binary wire codec and its HELLO negotiation.

Two layers of coverage:

* **Codec properties** — every registered payload dataclass round-trips
  through its generated encoder/decoder (including edge values: long
  strings, out-of-band blobs, i64 overflow, subclasses), and the tagged
  value encoding round-trips arbitrary primitive trees (hypothesis).
* **Mixed-version clusters over real sockets** — a new-codec build and a
  legacy pickled-envelope build (modelled as ``wire_formats=()``)
  interoperate in both directions for every registered payload, and the
  binary dialect is provably used only between matching builds.
"""

import dataclasses
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import wirecodec
from repro.net.deadline import Deadline
from repro.net.endpoint import PROTOCOL_VERSION, Hello
from repro.net.message import Message, MessageKind, ReplyPayload
from repro.net.tcpnet import TcpNetwork
from repro.rmi import protocol
from repro.rmi.stub import RemoteRef

BIG_BLOB = b"\xab" * (wirecodec.OOB_THRESHOLD * 3)  # flushes out-of-band

#: At least one representative instance per registered payload class,
#: exercising defaults, non-defaults, and None-able fields.
SAMPLES = {
    protocol.InvokeRequest: [
        protocol.InvokeRequest(name="acct", method="debit",
                               args_blob=b"\x80\x05args"),
        protocol.InvokeRequest(name="s" * 300, method="m", args_blob=b""),
    ],
    protocol.LookupRequest: [protocol.LookupRequest(name="printer")],
    protocol.BindRequest: [
        protocol.BindRequest(name="printer",
                             ref=RemoteRef(node_id="n1", name="printer")),
        protocol.BindRequest(name="printer",
                             ref=RemoteRef(node_id="n2", name="printer",
                                           methods=("print_it", "status")),
                             replace=True),
    ],
    protocol.UnbindRequest: [protocol.UnbindRequest(name="printer")],
    protocol.ListRequest: [protocol.ListRequest()],
    protocol.FindRequest: [
        protocol.FindRequest(name="agent"),
        protocol.FindRequest(name="agent", hops=("n1", "n2"),
                             origin_hint="n3", verify=False),
    ],
    protocol.MoveRequest: [
        protocol.MoveRequest(name="acct", target="n2", lock_token="tok",
                             alternates=("n3", "n4")),
    ],
    protocol.ObjectTransfer: [
        protocol.ObjectTransfer(name="acct", class_name="Account",
                                state_blob=b"state", class_desc=None,
                                class_hash="h1", origin="n1",
                                transfer_id="t-1", shared=False),
        protocol.ObjectTransfer(name="acct", class_name="Account",
                                state_blob=BIG_BLOB, class_desc=None,
                                class_hash="h1", origin="n1",
                                transfer_id="t-2"),
    ],
    protocol.TransferPrepare: [
        protocol.TransferPrepare(name="acct", class_name="Account",
                                 class_desc=None, class_hash="h1",
                                 origin="n1", transfer_id="t-1",
                                 total_bytes=1024, chunk_count=4,
                                 shared=False, ttl_ms=5_000.0),
    ],
    protocol.TransferChunk: [
        protocol.TransferChunk(transfer_id="t-1", index=0, data=b"chunk"),
        protocol.TransferChunk(transfer_id="t-1", index=3, data=BIG_BLOB),
    ],
    protocol.TransferCommit: [
        protocol.TransferCommit(transfer_id="t-1", name="acct"),
    ],
    protocol.TransferAbort: [
        protocol.TransferAbort(transfer_id="t-1", reason="receiver died"),
    ],
    protocol.MoveComplete: [
        protocol.MoveComplete(name="acct", location="n2"),
    ],
    protocol.ClassRequest: [
        protocol.ClassRequest(class_name="Account", if_hash="h1"),
    ],
    protocol.ClassPush: [
        protocol.ClassPush(class_name="Account", source_hash="h1"),
        protocol.ClassPush(class_name="Account", source_hash="h1",
                           desc=None, only_if_missing=True),
    ],
    protocol.InstantiateRequest: [
        protocol.InstantiateRequest(class_name="Account", name="acct",
                                    args_blob=b"\x80\x05args", shared=False),
    ],
    protocol.LockRequestPayload: [
        protocol.LockRequestPayload(name="acct", target="n2",
                                    requester="n1"),
        protocol.LockRequestPayload(name="acct", target="n2",
                                    requester="n1", wait_ms=250.0),
    ],
    protocol.UnlockPayload: [protocol.UnlockPayload(name="acct", token="t")],
    protocol.LockConfirm: [protocol.LockConfirm(name="acct", token="t")],
    protocol.AgentHopPayload: [
        protocol.AgentHopPayload(name="agent", class_name="Crawler",
                                 state_blob=b"state", class_desc=None,
                                 class_hash="h2", origin="n1",
                                 tour_id="tour-1", itinerary=("n2", "n3"),
                                 shared=True),
    ],
    protocol.AgentLaunch: [
        protocol.AgentLaunch(name="agent", itinerary=("n1", "n2"),
                             lock_token="tok"),
    ],
    protocol.LoadQuery: [protocol.LoadQuery()],
    protocol.JoinRequest: [
        protocol.JoinRequest(node_id="n9"),
        protocol.JoinRequest(node_id="n9", endpoint=("10.0.0.9", 9000)),
    ],
    protocol.AnnouncePayload: [
        protocol.AnnouncePayload(members={"n1": ("10.0.0.1", 9000),
                                          "n2": None}),
    ],
    protocol.RegistrySnapshot: [
        protocol.RegistrySnapshot(
            bindings={"printer": RemoteRef(node_id="n1", name="printer")},
            forwarding={"acct": "n2"},
            class_names=("Account", "Crawler"),
        ),
    ],
    ReplyPayload: [
        ReplyPayload(value="pong"),
        ReplyPayload(value=None),
        ReplyPayload(error=ValueError("boom"), remote_traceback="tb lines"),
    ],
    RemoteRef: [
        RemoteRef(node_id="n1", name="printer"),
        RemoteRef(node_id="n2", name="acct", methods=("debit", "credit")),
    ],
}


def assert_equivalent(a, b):
    """Deep equality that treats exceptions by (type, args) and accepts
    bytes-like equivalence (the wire returns ``bytes`` for any buffer)."""
    if isinstance(a, BaseException) or isinstance(b, BaseException):
        assert type(a) is type(b) and a.args == b.args
        return
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        assert type(a) is type(b)
        for f in dataclasses.fields(a):
            assert_equivalent(getattr(a, f.name), getattr(b, f.name))
        return
    if isinstance(a, (bytes, bytearray, memoryview)):
        assert bytes(a) == bytes(b)
        return
    if isinstance(a, tuple):
        assert isinstance(b, tuple) and len(a) == len(b)
        for x, y in zip(a, b):
            assert_equivalent(x, y)
        return
    assert a == b and type(a) is type(b)


def all_samples():
    for cls, instances in SAMPLES.items():
        for i, instance in enumerate(instances):
            yield pytest.param(instance, id=f"{cls.__name__}-{i}")


class TestGeneratedCodecs:
    def test_every_registered_payload_has_a_sample(self):
        """Coverage guard: adding a payload class without extending this
        suite fails here, not silently."""
        assert set(SAMPLES) == set(wirecodec.REGISTERED_PAYLOADS)

    @pytest.mark.parametrize("payload", list(all_samples()))
    def test_value_roundtrip(self, payload):
        blob = wirecodec.encode_value(payload)
        assert_equivalent(wirecodec.decode_value(blob), payload)

    @pytest.mark.parametrize("payload", list(all_samples()))
    def test_envelope_roundtrip(self, payload):
        message = Message(kind=MessageKind.INVOKE, src="n1", dst="n2",
                          payload=payload)
        parts = wirecodec.encode_envelope(message)
        body = b"".join(bytes(p) for p in parts)
        assert wirecodec.is_binary_envelope(body)
        decoded = wirecodec.decode_envelope(body)
        assert (decoded.kind, decoded.src, decoded.dst, decoded.msg_id) == \
            (message.kind, message.src, message.dst, message.msg_id)
        assert_equivalent(decoded.payload, payload)

    def test_binary_beats_pickle_on_size_for_control_payloads(self):
        """The compact layout is not just faster — for the small
        control-plane records it is also smaller than their pickle."""
        for cls, instances in SAMPLES.items():
            payload = instances[0]
            binary = len(wirecodec.encode_value(payload))
            pickled = len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
            assert binary <= pickled, cls.__name__

    def test_codes_are_stable_and_dense(self):
        for code, cls in enumerate(wirecodec.REGISTERED_PAYLOADS):
            assert wirecodec.payload_code(cls) == code
        assert wirecodec.payload_code(Hello) is None


# Arbitrary primitive trees for the tagged value encoding.  ``max_size``
# for tuples stays under the 255-element inline cap; bigger tuples take
# the pickle fallback, covered separately below.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 70), max_value=1 << 70),
    st.floats(allow_nan=False),
    st.text(max_size=300),
    st.binary(max_size=300),
)
_values = st.recursive(
    _scalars, lambda inner: st.tuples(inner, inner, inner), max_leaves=12
)


class _Flag(int):
    """Module-level int subclass (picklable) for the exact-type check."""


class TestTaggedValues:
    @given(value=_values)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_preserves_value_and_type(self, value):
        decoded = wirecodec.decode_value(wirecodec.encode_value(value))
        assert_equivalent(decoded, value)

    def test_i64_overflow_falls_back_to_pickle(self):
        for n in (1 << 80, -(1 << 80)):
            assert wirecodec.decode_value(wirecodec.encode_value(n)) == n

    def test_subclasses_keep_their_identity(self):
        """Exact-type dispatch: an int/str subclass must not be flattened
        to its base on the wire."""
        decoded = wirecodec.decode_value(wirecodec.encode_value(_Flag(3)))
        assert type(decoded) is _Flag and decoded == 3

    def test_wide_tuple_roundtrips_via_pickle_fallback(self):
        wide = tuple(range(1000))  # beyond the 255-item inline cap
        assert wirecodec.decode_value(wirecodec.encode_value(wide)) == wide

    def test_nan_roundtrips(self):
        decoded = wirecodec.decode_value(wirecodec.encode_value(float("nan")))
        assert decoded != decoded  # NaN semantics preserved

    def test_remote_refs_use_the_compiled_codec(self):
        ref = RemoteRef(node_id="n1", name="printer")
        first = wirecodec.encode_value(ref)
        assert first == wirecodec.encode_value(ref)  # deterministic
        assert first[0] == 8  # registered-class tag, not pickle
        assert wirecodec.decode_value(first) == ref

    def test_trailing_garbage_rejected(self):
        blob = wirecodec.encode_value("x") + b"\x00"
        with pytest.raises(ValueError):
            wirecodec.decode_value(blob)


class TestEnvelope:
    @pytest.mark.parametrize("kind", list(MessageKind))
    def test_every_kind_has_a_wire_code(self, kind):
        message = Message(kind=kind, src="a", dst="b", payload=None)
        body = b"".join(
            bytes(p) for p in wirecodec.encode_envelope(message))
        assert wirecodec.decode_envelope(body).kind is kind

    def test_reply_header_fields_ride_the_flags(self):
        request = Message(kind=MessageKind.INVOKE, src="a", dst="b",
                          payload=None)
        reply = request.reply(ReplyPayload(value=1))
        body = b"".join(
            bytes(p) for p in wirecodec.encode_envelope(reply))
        decoded = wirecodec.decode_envelope(body)
        assert decoded.in_reply_to is MessageKind.INVOKE
        assert decoded.reply_to_id == request.msg_id
        assert decoded.msg_id == reply.msg_id
        assert decoded.deadline is None

    def test_deadline_ships_remaining_budget(self):
        message = Message(kind=MessageKind.PING, src="a", dst="b",
                          deadline=Deadline.after_ms(5_000))
        body = b"".join(
            bytes(p) for p in wirecodec.encode_envelope(message))
        decoded = wirecodec.decode_envelope(body)
        # Re-anchored on the receiving clock: the remaining budget is
        # (approximately) preserved, exactly like Deadline.__reduce__.
        assert 4_000 < decoded.deadline.remaining_ms() <= 5_000

    def test_large_blob_fields_ship_zero_copy(self):
        view = memoryview(BIG_BLOB)
        chunk = protocol.TransferChunk(transfer_id="t", index=0, data=view)
        message = Message(kind=MessageKind.TRANSFER_CHUNK, src="a", dst="b",
                          payload=chunk)
        parts = wirecodec.encode_envelope(message)
        assert len(parts) >= 2  # head + out-of-band blob
        assert any(p is view for p in parts)  # the original buffer, uncopied
        decoded = wirecodec.decode_envelope(
            b"".join(bytes(p) for p in parts))
        assert bytes(decoded.payload.data) == BIG_BLOB

    def test_small_messages_are_one_buffer(self):
        message = Message(kind=MessageKind.PING, src="a", dst="b")
        parts = wirecodec.encode_envelope(message)
        assert len(parts) == 1

    def test_binary_envelope_never_collides_with_pickle(self):
        assert wirecodec.MAGIC == 0xB1
        blob = pickle.dumps(("anything",), pickle.HIGHEST_PROTOCOL)
        assert not wirecodec.is_binary_envelope(blob)


class TestNegotiation:
    def hello(self, **overrides):
        values = dict(
            version=PROTOCOL_VERSION, node_id="peer", codecs=(),
            settings={wirecodec.WIRE_SETTING: (wirecodec.WIRE_FORMAT,)},
        )
        values.update(overrides)
        return Hello(**values)

    def test_matching_build_accepts_binary(self):
        assert wirecodec.hello_accepts_binary(self.hello(), PROTOCOL_VERSION)

    def test_no_hello_refuses(self):
        assert not wirecodec.hello_accepts_binary(None, PROTOCOL_VERSION)

    def test_version_mismatch_refuses(self):
        hello = self.hello(version=PROTOCOL_VERSION + 1)
        assert not wirecodec.hello_accepts_binary(hello, PROTOCOL_VERSION)

    def test_absent_or_foreign_format_refuses(self):
        assert not wirecodec.hello_accepts_binary(
            self.hello(settings={}), PROTOCOL_VERSION)
        assert not wirecodec.hello_accepts_binary(
            self.hello(settings={wirecodec.WIRE_SETTING: ("bin1:deadbeef",)}),
            PROTOCOL_VERSION)

    def test_list_advertisement_accepted(self):
        """settings survive serialization as lists on some paths; the
        membership check must not insist on tuples."""
        hello = self.hello(
            settings={wirecodec.WIRE_SETTING: [wirecodec.WIRE_FORMAT]})
        assert wirecodec.hello_accepts_binary(hello, PROTOCOL_VERSION)

    def test_format_digest_tracks_the_schema(self):
        assert wirecodec.WIRE_FORMAT.startswith("bin1:")
        assert len(wirecodec.WIRE_FORMAT) == len("bin1:") + 12


@pytest.fixture
def nets():
    created = []

    def factory(**kwargs):
        net = TcpNetwork(**kwargs)
        created.append(net)
        return net

    yield factory
    for net in created:
        net.shutdown()


def link(a, a_node, b, b_node):
    a.connect(b_node, b.endpoint_of(b_node))
    b.connect(a_node, a.endpoint_of(a_node))


def count_binary_encodes(monkeypatch):
    encoded = []
    real = wirecodec.encode_envelope
    monkeypatch.setattr(
        wirecodec, "encode_envelope",
        lambda message: encoded.append(message.kind) or real(message),
    )
    return encoded


class TestMixedVersionClusters:
    """New-codec and legacy builds in one cluster, over real sockets."""

    def test_matching_builds_use_binary_both_ways(self, nets, monkeypatch):
        a, b = nets(), nets()
        a.register("hub", lambda m: m.payload)
        b.register("worker", lambda m: m.payload)
        link(a, "hub", b, "worker")
        encoded = count_binary_encodes(monkeypatch)
        assert a.call("hub", "worker", MessageKind.PING, 42) == 42
        assert b.call("worker", "hub", MessageKind.PING, 43) == 43
        # Request and reply, in each direction.
        assert encoded.count(MessageKind.PING) == 2
        assert encoded.count(MessageKind.REPLY) == 2

    def test_new_client_against_legacy_server_stays_pickled(
            self, nets, monkeypatch):
        modern = nets()
        legacy = nets(wire_formats=())  # models a pre-codec build
        modern.register("hub", lambda m: m.payload)
        legacy.register("old", lambda m: m.payload)
        link(modern, "hub", legacy, "old")
        encoded = count_binary_encodes(monkeypatch)
        assert modern.call("hub", "old", MessageKind.PING, "x") == "x"
        assert encoded == []  # degrade, never mis-frame

    def test_legacy_client_against_new_server_stays_pickled(
            self, nets, monkeypatch):
        modern = nets()
        legacy = nets(wire_formats=())
        modern.register("hub", lambda m: m.payload)
        legacy.register("old", lambda m: m.payload)
        link(modern, "hub", legacy, "old")
        encoded = count_binary_encodes(monkeypatch)
        assert legacy.call("old", "hub", MessageKind.PING, "y") == "y"
        assert encoded == []

    def test_schema_drift_degrades_to_pickle(self, nets, monkeypatch):
        """A build whose compiled schema differs (different digest) must
        never receive binary frames it would mis-decode."""
        modern = nets()
        drifted = nets(wire_formats=("bin1:000000000000",))
        modern.register("hub", lambda m: m.payload)
        drifted.register("next", lambda m: m.payload)
        link(modern, "hub", drifted, "next")
        encoded = count_binary_encodes(monkeypatch)
        assert modern.call("hub", "next", MessageKind.PING, 1) == 1
        assert drifted.call("next", "hub", MessageKind.PING, 2) == 2
        assert encoded == []

    @pytest.mark.parametrize("payload", list(all_samples()))
    def test_every_payload_crosses_a_mixed_cluster_both_ways(
            self, nets, payload):
        """The full payload matrix over real sockets: modern -> legacy
        rides the pickled envelope, modern -> modern rides binary; both
        must deliver equivalent values."""
        modern, peer, legacy = nets(), nets(), nets(wire_formats=())
        modern.register("hub", lambda m: m.payload)
        peer.register("worker", lambda m: m.payload)
        legacy.register("old", lambda m: m.payload)
        link(modern, "hub", peer, "worker")
        link(modern, "hub", legacy, "old")
        echoed = modern.call("hub", "worker", MessageKind.INVOKE, payload)
        assert_equivalent(echoed, payload)
        echoed = modern.call("hub", "old", MessageKind.INVOKE, payload)
        assert_equivalent(echoed, payload)
        echoed = legacy.call("old", "hub", MessageKind.INVOKE, payload)
        assert_equivalent(echoed, payload)
