"""``Transport.stream``: windowed pipelined request sequences."""

import pytest

from repro.errors import MageError
from repro.net.deadline import Deadline
from repro.net.message import MessageKind
from repro.net.simnet import SimNetwork
from repro.net.tcpnet import TcpNetwork


def _echo(message):
    if message.payload == "boom":
        raise MageError("handler refused this chunk")
    return message.payload


@pytest.fixture
def simnet():
    net = SimNetwork()
    net.register("a", _echo)
    net.register("b", _echo)
    return net


@pytest.fixture
def tcpnet():
    net = TcpNetwork()
    net.register("a", _echo)
    net.register("b", _echo)
    yield net
    net.shutdown()


class TestStreamSim:
    def test_results_in_request_order(self, simnet):
        requests = [(MessageKind.INVOKE, i) for i in range(20)]
        assert simnet.stream("a", "b", requests, window=4) == list(range(20))

    def test_deterministic_message_sequence(self, simnet):
        """On the eager transport a stream is the sequential call loop."""
        simnet.stream("a", "b", [(MessageKind.INVOKE, i) for i in range(5)],
                      window=3)
        kinds = [e.kind for e in simnet.trace.events() if not e.local]
        assert kinds == ["INVOKE", "REPLY(INVOKE)"] * 5

    def test_lazy_generator_requests(self, simnet):
        def produce():
            for i in range(7):
                yield (MessageKind.INVOKE, i * 2)

        assert simnet.stream("a", "b", produce()) == [0, 2, 4, 6, 8, 10, 12]

    def test_first_failure_raises(self, simnet):
        requests = [(MessageKind.INVOKE, 0), (MessageKind.INVOKE, "boom"),
                    (MessageKind.INVOKE, 2)]
        with pytest.raises(MageError):
            simnet.stream("a", "b", requests, window=1)

    def test_window_validation(self, simnet):
        with pytest.raises(ValueError):
            simnet.stream("a", "b", [], window=0)

    def test_empty_stream(self, simnet):
        assert simnet.stream("a", "b", []) == []


class TestStreamTcp:
    def test_pipelined_stream_correctness(self, tcpnet):
        requests = [(MessageKind.INVOKE, i) for i in range(50)]
        assert tcpnet.stream("a", "b", requests, window=8) == list(range(50))

    def test_failure_cancels_outstanding(self, tcpnet):
        requests = [(MessageKind.INVOKE, i) for i in range(3)]
        requests += [(MessageKind.INVOKE, "boom")]
        requests += [(MessageKind.INVOKE, i) for i in range(3)]
        with pytest.raises(MageError):
            tcpnet.stream("a", "b", requests, window=2)

    def test_stream_respects_deadline(self, tcpnet):
        expired = Deadline.after_ms(0)
        with pytest.raises(Exception):
            tcpnet.stream("a", "b", [(MessageKind.INVOKE, 1)],
                          deadline=expired)
