"""Reactor edge cases: backpressure, hard close, coalescing, shutdown.

The happy path of the event-loop data plane is exercised end-to-end by
every TcpNetwork test; these tests pin the corners that only show up
under adversity — a peer that stops reading (EAGAIN / partial writes), a
peer that dies mid-frame, the coalescer's two flush triggers, and a
reactor shutdown racing queued writes.  Each test drives a raw
:class:`~repro.net.reactor.Reactor` over a socketpair so the scenarios
are deterministic and need no TCP listener.
"""

from __future__ import annotations

import os
import select
import socket
import threading
import time

import pytest

from repro.net.reactor import CODEC_SHIFT, HEADER, Reactor

#: Generous deadline for cross-thread assertions on a noisy box.
WAIT_S = 5.0


def frame(body: bytes, codec: int = 0) -> bytes:
    """Encode one wire frame the way the reactor's parser expects."""
    return HEADER.pack(len(body) | (codec << CODEC_SHIFT)) + body


def read_exactly(sock: socket.socket, nbytes: int) -> bytes:
    """Blocking read of ``nbytes`` from the raw test-side socket."""
    sock.settimeout(WAIT_S)
    buf = bytearray()
    while len(buf) < nbytes:
        chunk = sock.recv(nbytes - len(buf))
        if not chunk:
            raise AssertionError(
                f"peer closed after {len(buf)}/{nbytes} bytes"
            )
        buf += chunk
    return bytes(buf)


def readable_within(sock: socket.socket, timeout_s: float) -> bool:
    ready, _, _ = select.select([sock], [], [], timeout_s)
    return bool(ready)


class FrameSink:
    """Collects delivered frames and the close reason, thread-safely."""

    def __init__(self) -> None:
        self.frames: list[tuple[int, bytes]] = []
        self.closed = threading.Event()
        self.close_reason: Exception | None = None
        self._lock = threading.Lock()

    def on_frame(self, ident: int, body: bytes, wire: int) -> None:
        with self._lock:
            self.frames.append((ident, body))

    def on_closed(self, reason: Exception | None) -> None:
        self.close_reason = reason
        self.closed.set()

    def snapshot(self) -> list[tuple[int, bytes]]:
        with self._lock:
            return list(self.frames)


@pytest.fixture
def reactor():
    created: list[Reactor] = []

    def factory(**kwargs) -> Reactor:
        kwargs.setdefault("max_frame", 1 << 22)
        r = Reactor(**kwargs)
        created.append(r)
        return r

    yield factory
    for r in created:
        r.close()


def test_backpressure_partial_writes_lose_nothing(reactor):
    """A peer that stops reading forces EAGAIN; every byte still lands.

    Small kernel buffers guarantee the direct-write fast path hits a
    partial ``send`` and the loop's flush path hits EAGAIN — the
    remainder must queue (visible via ``queued_bytes``) and drain in
    order once the peer reads again.
    """
    ours, theirs = socket.socketpair()
    ours.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
    theirs.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
    sink = FrameSink()
    conn = reactor().add_connection(ours, sink.on_frame, sink.on_closed)
    payloads = [bytes([i % 256]) * 8192 for i in range(40)]
    wire = b"".join(frame(p) for p in payloads)
    for p in payloads:
        conn.send(frame(p))
    # The peer has read nothing, so the bulk of the traffic must be
    # parked in the write queue rather than dropped.
    assert conn.queued_bytes() > 0
    got = read_exactly(theirs, len(wire))
    assert got == wire
    deadline = time.monotonic() + WAIT_S
    while conn.queued_bytes() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert conn.queued_bytes() == 0
    theirs.close()


def test_peer_hard_close_mid_frame(reactor):
    """EOF inside a frame: on_closed fires once, no partial on_frame."""
    ours, theirs = socket.socketpair()
    sink = FrameSink()
    reactor().add_connection(ours, sink.on_frame, sink.on_closed)
    # A complete frame, then a header promising 100 bytes with only 10 sent.
    theirs.sendall(frame(b"whole") + HEADER.pack(100) + b"x" * 10)
    theirs.close()
    assert sink.closed.wait(WAIT_S)
    assert sink.close_reason is None  # orderly EOF, not an error
    assert sink.snapshot() == [(0, b"whole")]


def test_coalesce_flush_on_size_vs_deadline(reactor):
    """The coalescer flushes on the byte watermark or the delay deadline.

    With a long delay and a small byte watermark, crossing the watermark
    must flush promptly (well before the deadline); staying under it
    must hold frames until the deadline passes.
    """
    r = reactor(coalesce_max_bytes=4096, coalesce_max_delay_s=0.6)
    ours, theirs = socket.socketpair()
    sink = FrameSink()
    conn = r.add_connection(ours, sink.on_frame, sink.on_closed)
    # Below the watermark: nothing may hit the wire before the deadline.
    conn.send(frame(b"small"))
    assert not readable_within(theirs, 0.1)
    assert readable_within(theirs, WAIT_S)  # ... but the deadline flushes it
    assert read_exactly(theirs, len(frame(b"small"))) == frame(b"small")
    # Over the watermark: the size trigger flushes long before 0.6 s.
    big = frame(b"y" * 8192)
    start = time.monotonic()
    conn.send(big)
    assert readable_within(theirs, WAIT_S)
    assert time.monotonic() - start < 0.5
    assert read_exactly(theirs, len(big)) == big
    theirs.close()


def test_shutdown_drains_queued_writes_and_leaks_no_fds(reactor):
    """Closing the reactor drains queued replies and releases every FD."""
    before = len(os.listdir("/proc/self/fd"))
    r = Reactor(max_frame=1 << 22, coalesce_max_delay_s=5.0)
    ours, theirs = socket.socketpair()
    sink = FrameSink()
    conn = r.add_connection(ours, sink.on_frame, sink.on_closed)
    # Attachment is a loop task; wait for it, else close() wins the race
    # and tears the never-registered connection down queue-and-all.
    deadline = time.monotonic() + WAIT_S
    while not conn._registered and time.monotonic() < deadline:
        time.sleep(0.005)
    assert conn._registered
    payloads = [frame(bytes([i]) * 1024) for i in range(16)]
    for p in payloads:
        conn.send(p)  # the 5 s coalescing delay keeps these queued
    r.close()
    # The graceful teardown must have pushed the queued frames out.
    wire = b"".join(payloads)
    assert read_exactly(theirs, len(wire)) == wire
    assert sink.closed.wait(WAIT_S)
    with pytest.raises(ConnectionError):
        conn.send(frame(b"too late"))
    theirs.close()
    after = len(os.listdir("/proc/self/fd"))
    assert after <= before
