"""The Deadline call context: budgets that shrink across hops.

Covers the contract the runtime's chases and sweeps build on:

* ``Deadline`` itself (monotonic anchoring, remaining/expired, tighter,
  re-anchoring across pickle — the wire treatment);
* deadline-bounded calls on both transports: an expired deadline fails
  fast without touching the wire, an in-flight deadline caps the reply
  wait below the io timeout;
* admission control: a request whose deadline expired before dispatch is
  dropped at dequeue (the handler never runs);
* propagation: the deadline rides the message header, is ambient during
  dispatch, and is inherited by nested calls — so a forwarding chain
  spends one shrinking budget, not a fresh io timeout per hop;
* determinism: an unexpired deadline leaves the simulated network's
  message trace identical to the no-deadline run.
"""

import pickle
import threading
import time

import pytest

from repro.errors import CallTimeoutError
from repro.net.deadline import (
    Deadline,
    current_deadline,
    deadline_scope,
    effective_deadline,
)
from repro.net.message import MessageKind
from repro.net.simnet import SimNetwork
from repro.net.tcpnet import TcpNetwork


@pytest.fixture
def net():
    network = TcpNetwork(io_timeout_s=5.0)
    yield network
    network.shutdown()


class TestDeadline:
    def test_remaining_shrinks_and_expires(self):
        deadline = Deadline.after_ms(30)
        assert 0 < deadline.remaining_ms() <= 30
        assert not deadline.expired
        time.sleep(0.05)
        assert deadline.expired
        assert deadline.remaining_ms() == 0.0
        assert deadline.remaining_s() == 0.0

    def test_after_s_and_after_ms_agree(self):
        a = Deadline.after_s(1.0)
        b = Deadline.after_ms(1000.0)
        assert abs(a.remaining_s() - b.remaining_s()) < 0.05

    def test_tighter_picks_the_earlier(self):
        near = Deadline.after_ms(10)
        far = Deadline.after_ms(10_000)
        assert Deadline.tighter(near, far) is near
        assert Deadline.tighter(far, near) is near
        assert Deadline.tighter(None, near) is near
        assert Deadline.tighter(near, None) is near
        assert Deadline.tighter(None, None) is None

    def test_pickle_reanchors_remaining_budget(self):
        deadline = Deadline.after_ms(500)
        time.sleep(0.05)  # spend some budget before "transmission"
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.remaining_ms() <= deadline.remaining_ms() + 1.0
        assert clone.remaining_ms() > 300  # the spent part stayed spent
        assert not clone.expired

    def test_expired_deadline_pickles_expired(self):
        deadline = Deadline.after_ms(1)
        time.sleep(0.01)
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.expired

    def test_scope_sets_and_restores_ambient(self):
        assert current_deadline() is None
        outer = Deadline.after_s(10)
        with deadline_scope(outer):
            assert current_deadline() is outer
            assert effective_deadline(None) is outer
            explicit = Deadline.after_s(1)
            assert effective_deadline(explicit) is explicit
            with deadline_scope(None):
                # An unbounded nested dispatch must not inherit the outer
                # request's budget.
                assert current_deadline() is None
            assert current_deadline() is outer
        assert current_deadline() is None


class TestSimDeadline:
    def test_expired_deadline_fails_before_the_wire(self):
        sim = SimNetwork()
        sim.register("a", lambda m: None)
        sim.register("b", lambda m: "pong")
        before = len(sim.trace)
        expired = Deadline.after_ms(0)
        time.sleep(0.002)
        with pytest.raises(CallTimeoutError):
            sim.call("a", "b", MessageKind.PING, deadline=expired)
        assert len(sim.trace) == before  # nothing was transmitted

    def test_handler_sees_the_shrinking_budget(self):
        sim = SimNetwork()
        seen = {}

        def handler(message):
            seen["header"] = message.deadline
            seen["ambient_remaining"] = current_deadline().remaining_ms()
            return "ok"

        sim.register("a", lambda m: None)
        sim.register("b", handler)
        assert sim.call("a", "b", MessageKind.PING,
                        deadline=Deadline.after_ms(5000)) == "ok"
        assert seen["header"] is not None
        assert 0 < seen["ambient_remaining"] <= 5000

    def test_nested_call_inherits_the_deadline(self):
        """A handler's own calls carry the caller's budget — the chain-walk
        propagation the lock/move chases rely on."""
        sim = SimNetwork()
        remaining_at = {}

        def relay(message):
            remaining_at["b"] = current_deadline().remaining_ms()
            time.sleep(0.05)  # spend budget at this hop
            return sim.call("b", "c", MessageKind.PING)  # no explicit deadline

        def leaf(message):
            remaining_at["c"] = message.deadline.remaining_ms()
            return "leaf"

        sim.register("a", lambda m: None)
        sim.register("b", relay)
        sim.register("c", leaf)
        answer = sim.call("a", "b", MessageKind.PING,
                          deadline=Deadline.after_ms(5000))
        assert answer == "leaf"
        # The leaf hop saw strictly less budget than the relay hop had.
        assert remaining_at["c"] < remaining_at["b"] - 40

    def test_unbounded_call_after_bounded_dispatch_stays_unbounded(self):
        sim = SimNetwork()
        seen = {}

        def handler(message):
            seen[message.payload] = message.deadline
            return "ok"

        sim.register("a", lambda m: None)
        sim.register("b", handler)
        sim.call("a", "b", MessageKind.PING, "bounded",
                 deadline=Deadline.after_s(5))
        sim.call("a", "b", MessageKind.PING, "unbounded")
        assert seen["bounded"] is not None
        assert seen["unbounded"] is None

    def test_expired_at_dispatch_is_dropped_not_executed(self):
        """Admission control: the handler never runs for a request whose
        deadline died in flight (emulated by expiring it mid-handler of a
        relay hop)."""
        sim = SimNetwork()
        executed = []

        def relay(message):
            time.sleep(0.06)  # burn the whole budget before forwarding
            return sim.call("b", "c", MessageKind.PING)

        def leaf(message):
            executed.append(message.payload)
            return "leaf"

        sim.register("a", lambda m: None)
        sim.register("b", relay)
        sim.register("c", leaf)
        with pytest.raises(CallTimeoutError):
            sim.call("a", "b", MessageKind.PING,
                     deadline=Deadline.after_ms(20))
        assert executed == []  # the second hop was dropped at dispatch

    def test_unexpired_deadline_keeps_the_trace_identical(self):
        def run(deadline):
            sim = SimNetwork()
            sim.register("a", lambda m: None)
            sim.register("b", lambda m: m.payload)
            for i in range(3):
                sim.call("a", "b", MessageKind.PING, i, deadline=deadline)
            return sim.trace.arrows(remote_only=True)

        assert run(None) == run(Deadline.after_s(60))


class TestTcpDeadline:
    def test_deadline_caps_the_reply_wait(self, net):
        """A 200 ms deadline beats the 5 s io timeout on a hung host."""
        net.register("a", lambda m: None)
        release = threading.Event()

        def hang(message):
            release.wait(3.0)
            return "late"

        net.register("b", hang)
        start = time.perf_counter()
        with pytest.raises(CallTimeoutError):
            net.call("a", "b", MessageKind.PING,
                     deadline=Deadline.after_ms(200))
        elapsed = time.perf_counter() - start
        assert elapsed < 1.5, f"deadline did not cap the wait: {elapsed:.2f}s"
        release.set()

    def test_expired_deadline_never_touches_the_wire(self, net):
        net.register("a", lambda m: None)
        reached = []
        net.register("b", lambda m: reached.append(m.payload))
        expired = Deadline.after_ms(0)
        time.sleep(0.002)
        future = net.call_async("a", "b", MessageKind.PING, "x",
                                deadline=expired)
        assert isinstance(future.exception(), CallTimeoutError)
        # Give any stray frame a moment, then confirm nothing arrived.
        time.sleep(0.1)
        assert reached == []

    def test_deadline_decrements_across_the_wire(self, net):
        """The pickled header re-anchors to the remaining budget: the
        handler sees less than the caller granted, more than zero."""
        seen = {}

        def handler(message):
            seen["remaining"] = message.deadline.remaining_ms()
            return "ok"

        net.register("a", lambda m: None)
        net.register("b", handler)
        assert net.call("a", "b", MessageKind.PING,
                        deadline=Deadline.after_ms(2000)) == "ok"
        assert 0 < seen["remaining"] <= 2000

    def test_nested_call_inherits_across_tcp_hops(self, net):
        remaining_at = {}

        def relay(message):
            remaining_at["b"] = current_deadline().remaining_ms()
            time.sleep(0.05)
            return net.call("b", "c", MessageKind.PING)

        def leaf(message):
            remaining_at["c"] = message.deadline.remaining_ms()
            return "leaf"

        net.register("a", lambda m: None)
        net.register("b", relay)
        net.register("c", leaf)
        assert net.call("a", "b", MessageKind.PING,
                        deadline=Deadline.after_ms(5000)) == "leaf"
        assert remaining_at["c"] < remaining_at["b"] - 40

    def test_expired_request_dropped_at_dequeue(self):
        """Admission control: a frame whose deadline dies on the (emulated)
        link is dropped at dispatch — the handler never runs for it."""
        executed = []

        def handler(message):
            executed.append(message.payload)
            return "ok"

        slow = TcpNetwork(latency_ms=150.0, io_timeout_s=5.0)
        try:
            slow.register("a", lambda m: None)
            slow.register("b", handler)
            # Without a deadline the link delay is just paid.
            assert slow.call("a", "b", MessageKind.PING, "warm") == "ok"
            doomed = slow.call_async("a", "b", MessageKind.PING, "doomed",
                                     deadline=Deadline.after_ms(50))
            with pytest.raises(CallTimeoutError):
                doomed.result()
            time.sleep(0.4)  # let the frame clear the emulated link
            assert executed == ["warm"]
        finally:
            slow.shutdown()

    @pytest.mark.parametrize("mode", ["per-call", "pooled"])
    def test_non_pipelined_modes_honour_deadlines(self, mode):
        network = TcpNetwork(mode=mode, io_timeout_s=5.0)
        try:
            network.register("a", lambda m: None)
            network.register("b", lambda m: m.payload)
            assert network.call("a", "b", MessageKind.PING, 7,
                                deadline=Deadline.after_s(5)) == 7
            expired = Deadline.after_ms(0)
            time.sleep(0.002)
            with pytest.raises(CallTimeoutError):
                network.call("a", "b", MessageKind.PING, deadline=expired)
        finally:
            network.shutdown()
