"""Latency and loss models."""

import pytest

from repro.net.conditions import (
    BernoulliLoss,
    ConstantLatency,
    DeterministicLoss,
    NoLoss,
    PerLinkLatency,
    UniformLatency,
    payload_nbytes,
)
from repro.net.message import Message, MessageKind


def _remote(payload=None) -> Message:
    return Message(kind=MessageKind.INVOKE, src="a", dst="b", payload=payload)


def _local(payload=None) -> Message:
    return Message(kind=MessageKind.FIND, src="a", dst="a", payload=payload)


class TestConstantLatency:
    def test_remote_vs_local(self):
        model = ConstantLatency(remote_ms=10.0, local_ms=0.1)
        assert model.latency_ms(_remote()) == 10.0
        assert model.latency_ms(_local()) == 0.1

    def test_default_calibration_is_ten_ms(self):
        assert ConstantLatency().latency_ms(_remote()) == 10.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(remote_ms=-1.0)

    def test_bandwidth_charges_by_size(self):
        model = ConstantLatency(remote_ms=10.0, bandwidth_bytes_per_ms=1250.0)
        small = model.latency_ms(_remote(payload=b"x"))
        big = model.latency_ms(_remote(payload=b"x" * 12500))
        assert big - small == pytest.approx(12499 / 1250.0, rel=0.01)

    def test_bandwidth_does_not_affect_local(self):
        model = ConstantLatency(local_ms=0.1, bandwidth_bytes_per_ms=1250.0)
        assert model.latency_ms(_local(payload=b"x" * 100000)) == 0.1

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            ConstantLatency(bandwidth_bytes_per_ms=0.0)


class TestPayloadSize:
    def test_none_payload_has_floor(self):
        assert payload_nbytes(_remote(None)) == 64

    def test_bytes_payload_counts_length(self):
        assert payload_nbytes(_remote(b"x" * 1000)) >= 1000

    def test_unpicklable_payload_falls_back(self):
        assert payload_nbytes(_remote(lambda: None)) == 256


class TestPerLinkLatency:
    def test_configured_link(self):
        model = PerLinkLatency({("a", "b"): 50.0})
        assert model.latency_ms(_remote()) == 50.0

    def test_directionality(self):
        model = PerLinkLatency({("b", "a"): 50.0})
        assert model.latency_ms(_remote()) == 10.0  # falls back to default

    def test_fallback_model(self):
        model = PerLinkLatency({}, default=ConstantLatency(remote_ms=3.0))
        assert model.latency_ms(_remote()) == 3.0


class TestUniformLatency:
    def test_within_bounds(self):
        model = UniformLatency(5.0, 15.0, seed=42)
        for _ in range(100):
            assert 5.0 <= model.latency_ms(_remote()) < 15.0

    def test_deterministic_for_seed(self):
        a = UniformLatency(5.0, 15.0, seed=7)
        b = UniformLatency(5.0, 15.0, seed=7)
        assert [a.latency_ms(_remote()) for _ in range(10)] == [
            b.latency_ms(_remote()) for _ in range(10)
        ]

    def test_local_is_constant(self):
        model = UniformLatency(5.0, 15.0, local_ms=0.2)
        assert model.latency_ms(_local()) == 0.2

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformLatency(10.0, 5.0)


class TestLossModels:
    def test_no_loss(self):
        assert not NoLoss().should_drop(_remote(), 0)

    def test_bernoulli_respects_probability_roughly(self):
        model = BernoulliLoss(0.5, seed=1)
        drops = sum(model.should_drop(_remote(), 0) for _ in range(1000))
        assert 400 < drops < 600

    def test_bernoulli_never_drops_local(self):
        model = BernoulliLoss(0.99, seed=1)
        assert not any(model.should_drop(_local(), 0) for _ in range(100))

    def test_bernoulli_rejects_certain_loss(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.0)

    def test_deterministic_drops_first_n(self):
        model = DeterministicLoss({"INVOKE": 2})
        assert model.should_drop(_remote(), 0)
        assert model.should_drop(_remote(), 1)
        assert not model.should_drop(_remote(), 2)

    def test_deterministic_per_link_budget(self):
        model = DeterministicLoss({"INVOKE": 1})
        other_link = Message(kind=MessageKind.INVOKE, src="x", dst="y")
        assert model.should_drop(_remote(), 0)
        assert model.should_drop(other_link, 0)  # separate budget per link

    def test_deterministic_ignores_other_kinds(self):
        model = DeterministicLoss({"INVOKE": 5})
        ping = Message(kind=MessageKind.PING, src="a", dst="b")
        assert not model.should_drop(ping, 0)
