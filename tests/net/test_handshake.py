"""HELLO handshake, wire-level codec negotiation, and the address book.

Two ``TcpNetwork`` instances in one test process stand in for two
*processes*: they share no node registry, so anything that works between
them — dialing, codec negotiation, reply routing — provably happened on
the wire, not through in-process state.
"""

import pytest

from repro.errors import ConfigurationError, NodeUnreachableError
from repro.net import codec
from repro.net.endpoint import PROTOCOL_VERSION, Endpoint, Hello
from repro.net.message import MessageKind
from repro.net.tcpnet import TcpNetwork

BIG = b"state" * 100_000  # well above the compress threshold


@pytest.fixture
def nets():
    """Factory for isolated transports, all torn down after the test."""
    created = []

    def factory(**kwargs):
        kwargs.setdefault("compress_threshold", 1024)
        net = TcpNetwork(**kwargs)
        created.append(net)
        return net

    yield factory
    for net in created:
        net.shutdown()


def link(a, a_node, b, b_node):
    """Teach two transports each other's endpoint (a seed list in miniature)."""
    a.connect(b_node, b.endpoint_of(b_node))
    b.connect(a_node, a.endpoint_of(a_node))


class TestEndpoint:
    def test_parse_roundtrip(self):
        endpoint = Endpoint.parse("10.0.0.7:9001")
        assert endpoint == Endpoint("10.0.0.7", 9001)
        assert str(endpoint) == "10.0.0.7:9001"
        assert endpoint.address() == ("10.0.0.7", 9001)

    def test_parse_rejects_garbage(self):
        for bad in ("no-port", ":123", "host:notaport"):
            with pytest.raises(ConfigurationError):
                Endpoint.parse(bad)

    def test_port_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            Endpoint("h", 0)
        with pytest.raises(ConfigurationError):
            Endpoint("h", 70000)


class TestAddressBook:
    def test_unknown_peer_is_unreachable(self, nets):
        net = nets()
        net.register("a", lambda m: "ok")
        with pytest.raises(NodeUnreachableError):
            net.call("a", "stranger", MessageKind.PING)

    def test_connected_peer_is_dialable_and_listed(self, nets):
        a, b = nets(), nets()
        a.register("hub", lambda m: "ok")
        b.register("worker", lambda m: "pong")
        a.connect("worker", b.endpoint_of("worker"))
        assert a.nodes() == ["hub", "worker"]
        assert a.call("hub", "worker", MessageKind.PING) == "pong"

    def test_rejoining_peer_new_endpoint_wins_over_stale_entry(self, nets):
        """A peer that comes back on a fresh port must be dialed there —
        the stale address-book entry (and channels built on it) lose."""
        a = nets()
        a.register("hub", lambda m: "ok")
        first = nets()
        first.register("worker", lambda m: "first-incarnation")
        a.connect("worker", first.endpoint_of("worker"))
        assert a.call("hub", "worker", MessageKind.PING) == "first-incarnation"
        assert a.open_channels() == 1

        second = nets()
        second.register("worker", lambda m: "second-incarnation")
        first.shutdown()
        a.connect("worker", second.endpoint_of("worker"))  # re-join, new port
        assert a.call("hub", "worker", MessageKind.PING) == "second-incarnation"
        assert a.endpoint_of("worker") == second.endpoint_of("worker")

    def test_forget_peer_prunes_every_record(self, nets):
        a, b = nets(), nets()
        a.register("hub", lambda m: "ok")
        b.register("worker", lambda m: "pong")
        a.connect("worker", b.endpoint_of("worker"))
        assert a.call("hub", "worker", MessageKind.PING) == "pong"
        assert a.link_latency_s("worker") is not None  # EWMA recorded
        a.forget_peer("worker")
        assert a.endpoint_of("worker") is None
        assert a.link_latency_s("worker") is None
        assert "worker" not in a.nodes()
        assert a.open_channels() == 0

    def test_unregister_prunes_link_state(self, nets):
        """Deregistration of a local node leaves no EWMA or codec
        advertisement behind (the satellite's long-lived-transport leak)."""
        net = nets()
        net.register("a", lambda m: "ok")
        net.register("b", lambda m: "pong")
        assert net.call("a", "b", MessageKind.PING) == "pong"
        assert net.link_latency_s("b") is not None
        assert net.peer_codecs("b") != ()
        net.unregister("b")
        assert net.link_latency_s("b") is None
        assert net.peer_codecs("b") == ()

    def test_fixed_port_pinning(self, nets):
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        net = nets(ports={"seed": port})
        net.register("seed", lambda m: "pong")
        assert net.port_of("seed") == port
        assert net.endpoint_of("seed") == Endpoint("127.0.0.1", port)


class TestHandshake:
    def test_codec_negotiation_happens_on_the_wire(self, nets, monkeypatch):
        """Two transports that share no registry still compress toward
        each other — the advertisement crossed in the HELLO frames.
        (uds=False: a same-host Unix-socket channel would skip
        compression outright; force TCP to observe the negotiated path.)"""
        a, b = nets(uds=False), nets(uds=False)
        a.register("hub", lambda m: "ok")
        b.register("worker", lambda m: len(m.payload))
        link(a, "hub", b, "worker")
        # The in-process registry path would answer raw for this pair:
        assert a.peer_codecs("worker") == ()
        compressions = []
        real_encode = codec.encode
        monkeypatch.setattr(
            codec, "encode",
            lambda ident, blob: compressions.append(ident) or real_encode(ident, blob),
        )
        assert a.call("hub", "worker", MessageKind.INVOKE, BIG) == len(BIG)
        assert codec.ZLIB in compressions
        assert a.negotiated_codecs("hub", "worker") == codec.available_codecs()

    def test_no_hello_legacy_server_degrades_to_raw(self, nets, monkeypatch):
        """A server that never answers HELLO (a pre-handshake build):
        the client waits out the handshake window once, then serves the
        whole conversation in raw framing — degrade, never fail."""
        a = nets(hello_timeout_s=0.2)
        legacy = nets(handshake=False)
        a.register("hub", lambda m: "ok")
        legacy.register("old", lambda m: len(m.payload))
        a.connect("old", legacy.endpoint_of("old"))
        compressions = []
        real_encode = codec.encode
        monkeypatch.setattr(
            codec, "encode",
            lambda ident, blob: compressions.append(ident) or real_encode(ident, blob),
        )
        assert a.call("hub", "old", MessageKind.INVOKE, BIG) == len(BIG)
        assert compressions == []  # nothing compressed toward the legacy peer
        assert a.negotiated_codecs("hub", "old") is None

    def test_legacy_client_against_handshaking_server(self, nets, monkeypatch):
        """The reverse direction: a no-HELLO client talks to a modern
        server; requests and replies stay raw and everything works."""
        legacy = nets(handshake=False)
        modern = nets()
        legacy.register("old", lambda m: "ok")
        modern.register("worker", lambda m: len(m.payload))
        legacy.connect("worker", modern.endpoint_of("worker"))
        compressions = []
        real_encode = codec.encode
        monkeypatch.setattr(
            codec, "encode",
            lambda ident, blob: compressions.append(ident) or real_encode(ident, blob),
        )
        assert legacy.call("old", "worker", MessageKind.INVOKE, BIG) == len(BIG)
        assert compressions == []

    def test_version_mismatch_degrades_to_raw_not_failure(self, nets, monkeypatch):
        a = nets()
        future = nets(protocol_version=PROTOCOL_VERSION + 1)
        a.register("hub", lambda m: "ok")
        future.register("worker", lambda m: len(m.payload))
        link(a, "hub", future, "worker")
        compressions = []
        real_encode = codec.encode
        monkeypatch.setattr(
            codec, "encode",
            lambda ident, blob: compressions.append(ident) or real_encode(ident, blob),
        )
        # Mixed-version peers interoperate on the raw dialect.
        assert a.call("hub", "worker", MessageKind.INVOKE, BIG) == len(BIG)
        assert compressions == []
        assert a.negotiated_codecs("hub", "worker") == ()
        assert future.call("worker", "hub", MessageKind.PING) == "ok"

    def test_advertise_codecs_override_rides_the_hello(self, nets, monkeypatch):
        """An explicit pre-codec advertisement (``()``) crosses the wire:
        the *other transport* falls back to raw toward that node."""
        a, b = nets(), nets()
        a.register("hub", lambda m: "ok")
        b.register("worker", lambda m: len(m.payload))
        b.advertise_codecs("worker", ())  # modelled pre-codec build
        link(a, "hub", b, "worker")
        compressions = []
        real_encode = codec.encode
        monkeypatch.setattr(
            codec, "encode",
            lambda ident, blob: compressions.append(ident) or real_encode(ident, blob),
        )
        assert a.call("hub", "worker", MessageKind.INVOKE, BIG) == len(BIG)
        assert compressions == []
        assert a.negotiated_codecs("hub", "worker") == ()

    def test_hello_frames_do_not_appear_in_traces(self, nets):
        a, b = nets(), nets()
        a.register("hub", lambda m: "ok")
        b.register("worker", lambda m: "pong")
        link(a, "hub", b, "worker")
        assert a.call("hub", "worker", MessageKind.PING) == "pong"
        assert set(b.trace.kinds()) == {"PING", "REPLY(PING)"}

    def test_pipelined_traffic_after_handshake(self, nets):
        """The handshake must not disturb the pipelined waiter machinery:
        N overlapped exchanges on the freshly negotiated channel."""
        a, b = nets(), nets()
        a.register("hub", lambda m: "ok")
        b.register("worker", lambda m: m.payload * 2)
        link(a, "hub", b, "worker")
        futures = [
            a.call_async("hub", "worker", MessageKind.INVOKE, i)
            for i in range(16)
        ]
        assert [f.result(5.0) for f in futures] == [i * 2 for i in range(16)]
        assert a.open_channels() == 1

    def test_slow_hello_past_the_window_degrades_via_redial(self, nets,
                                                            monkeypatch):
        """A server whose HELLO arrives after the handshake window: the
        client must not keep reading a stream that may hold a
        half-consumed frame — it redials and proceeds raw.  Degrade,
        never fail (and never desync)."""
        import time

        from repro.net import tcpnet

        real_encode = tcpnet._encode_hello

        def delayed_encode(hello):
            if hello.node_id == "worker":  # the server side's HELLO only
                time.sleep(0.6)
            return real_encode(hello)

        monkeypatch.setattr(tcpnet, "_encode_hello", delayed_encode)
        a = nets(hello_timeout_s=0.2)
        b = nets()
        a.register("hub", lambda m: "ok")
        b.register("worker", lambda m: len(m.payload))
        a.connect("worker", b.endpoint_of("worker"))
        assert a.call("hub", "worker", MessageKind.INVOKE, BIG) == len(BIG)
        assert a.negotiated_codecs("hub", "worker") is None  # raw channel
        # The channel stays healthy for further traffic.
        assert a.call("hub", "worker", MessageKind.INVOKE, b"x") == 1
        assert a.open_channels() == 1

    def test_hello_settings_are_forward_compatible(self):
        hello = Hello(version=PROTOCOL_VERSION, node_id="n",
                      codecs=("zlib",), settings={"unknown-key": 42})
        assert hello.settings["unknown-key"] == 42  # carried, never interpreted
