"""The asynchronous invocation core: CallFuture, gather, and both transports.

Covers the contract the runtime's scatter-gather operations build on:

* ``call_async(...).result()`` is exactly ``call(...)`` on both transports;
* the simulated network completes futures eagerly and deterministically
  (same messages, same traces as the blocking loop);
* the pipelined TCP transport genuinely overlaps outstanding round trips;
* failure isolation — one in-flight call timing out or erroring must not
  corrupt or delay other waiters sharing the pooled connection.
"""

import threading
import time

import pytest

from repro.errors import (
    CallTimeoutError,
    MessageLostError,
    NodeUnreachableError,
)
from repro.net.conditions import DeterministicLoss
from repro.net.message import MessageKind
from repro.net.simnet import SimNetwork
from repro.net.tcpnet import TcpNetwork
from repro.net.transport import CallFuture, gather


@pytest.fixture
def net():
    network = TcpNetwork()
    yield network
    network.shutdown()


class TestCallFuture:
    def test_resolve_and_result(self):
        future = CallFuture("test")
        assert not future.done()
        future._resolve(7)
        assert future.done()
        assert future.result() == 7
        assert future.exception() is None

    def test_fail_raises_from_result(self):
        future = CallFuture("test")
        future._fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            future.result()
        assert isinstance(future.exception(), ValueError)

    def test_first_completion_wins(self):
        future = CallFuture("test")
        future._resolve("first")
        future._fail(ValueError("late failure"))
        future._resolve("late value")
        assert future.result() == "first"

    def test_result_wait_timeout(self):
        future = CallFuture("test")
        with pytest.raises(CallTimeoutError):
            future.result(timeout_s=0.01)
        # Waiting merely gave up; the future can still complete.
        future._resolve(1)
        assert future.result() == 1

    def test_completed_constructor(self):
        assert CallFuture.completed([1, 2]).result() == [1, 2]

    def test_add_done_callback_after_completion(self):
        future = CallFuture.completed("x")
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == ["x"]

    def test_add_done_callback_before_completion(self):
        future = CallFuture("test")
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == []
        future._resolve("y")
        assert seen == ["y"]

    def test_map_transforms_value(self):
        future = CallFuture.completed(21)
        assert future.map(lambda v: v * 2).result() == 42

    def test_map_propagates_source_failure(self):
        future = CallFuture("test")
        future._fail(ValueError("boom"))
        mapped = future.map(lambda v: v * 2)
        with pytest.raises(ValueError, match="boom"):
            mapped.result()
        assert isinstance(mapped.exception(), ValueError)

    def test_map_failure_stays_in_mapped_future(self):
        future = CallFuture.completed(1)

        def bad_mapper(value):
            raise RuntimeError("mapper died")

        mapped = future.map(bad_mapper)
        with pytest.raises(RuntimeError, match="mapper died"):
            mapped.result()
        assert isinstance(mapped.exception(), RuntimeError)
        assert future.exception() is None  # the source is untouched

    def test_map_runs_once(self):
        future = CallFuture.completed(3)
        calls = []

        def mapper(value):
            calls.append(value)
            return value + 1

        mapped = future.map(mapper)
        assert mapped.result() == 4
        assert mapped.result() == 4
        assert calls == [3]

    def test_gather_collects_in_order(self):
        futures = [CallFuture.completed(i) for i in range(3)]
        assert gather(futures) == [0, 1, 2]

    def test_gather_raises_first_failure(self):
        ok = CallFuture.completed(1)
        bad = CallFuture("test")
        bad._fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            gather([ok, bad])

    def test_gather_return_exceptions(self):
        ok = CallFuture.completed(1)
        bad = CallFuture("test")
        bad._fail(ValueError("boom"))
        results = gather([ok, bad], return_exceptions=True)
        assert results[0] == 1
        assert isinstance(results[1], ValueError)


class TestSimAsync:
    def test_call_async_is_eager_and_matches_call(self):
        sim = SimNetwork()
        sim.register("a", lambda m: None)
        sim.register("b", lambda m: m.payload * 2)
        future = sim.call_async("a", "b", MessageKind.PING, 21)
        assert future.done()  # completed on the calling thread
        assert future.result() == 42

    def test_async_sweep_produces_the_sequential_trace(self):
        """Determinism: scatter-gather over sim == the blocking loop."""

        def run(use_async: bool) -> list[str]:
            sim = SimNetwork()
            sim.register("a", lambda m: None)
            for peer in ("b", "c", "d"):
                sim.register(peer, lambda m: m.payload)
            if use_async:
                futures = [
                    sim.call_async("a", peer, MessageKind.PING, i)
                    for i, peer in enumerate(("b", "c", "d"))
                ]
                assert gather(futures) == [0, 1, 2]
            else:
                for i, peer in enumerate(("b", "c", "d")):
                    assert sim.call("a", peer, MessageKind.PING, i) == i
            return sim.trace.arrows(remote_only=True)

        assert run(use_async=True) == run(use_async=False)

    def test_handler_error_fails_the_future(self):
        sim = SimNetwork()
        sim.register("a", lambda m: None)

        def boom(message):
            raise ValueError("remote failure")

        sim.register("b", boom)
        future = sim.call_async("a", "b", MessageKind.PING)
        assert isinstance(future.exception(), ValueError)

    def test_loss_retries_happen_before_the_future_returns(self):
        sim = SimNetwork(loss=DeterministicLoss({"PING": 2}))
        sim.register("a", lambda m: None)
        sim.register("b", lambda m: "pong")
        future = sim.call_async("a", "b", MessageKind.PING)
        assert future.result() == "pong"

    def test_exhausted_retry_budget_fails_the_future(self):
        sim = SimNetwork(loss=DeterministicLoss({"PING": 99}))
        sim.register("a", lambda m: None)
        sim.register("b", lambda m: "pong")
        future = sim.call_async("a", "b", MessageKind.PING)
        assert isinstance(future.exception(), MessageLostError)

    def test_call_many_async_resolves_to_result_list(self):
        sim = SimNetwork()
        sim.register("a", lambda m: None)
        sim.register("b", lambda m: m.payload + 1)
        future = sim.call_many_async(
            "a", "b", [(MessageKind.PING, i) for i in range(4)]
        )
        assert future.result() == [1, 2, 3, 4]

    def test_call_many_async_empty(self):
        sim = SimNetwork()
        future = sim.call_many_async("a", "b", [])
        assert future.done()
        assert future.result() == []


class TestTcpAsync:
    def test_result_matches_call(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: ("echo", m.payload))
        future = net.call_async("a", "b", MessageKind.PING, 42)
        assert future.result() == ("echo", 42)

    def test_round_trips_overlap(self, net):
        """Four 150 ms handlers, overlapped vs a measured sequential
        baseline (no absolute wall-clock bound — CI runners stall)."""
        net.register("a", lambda m: None)

        def slow_echo(message):
            time.sleep(0.15)
            return message.payload

        net.register("b", slow_echo)
        net.call("a", "b", MessageKind.PING, -1)  # warm the channel
        start = time.perf_counter()
        for i in range(4):
            assert net.call("a", "b", MessageKind.PING, i) == i
        sequential = time.perf_counter() - start
        start = time.perf_counter()
        futures = [net.call_async("a", "b", MessageKind.PING, i) for i in range(4)]
        assert gather(futures) == [0, 1, 2, 3]
        overlapped = time.perf_counter() - start
        assert overlapped < 0.6 * sequential, (sequential, overlapped)

    def test_handler_error_fails_only_its_future(self, net):
        net.register("a", lambda m: None)

        def picky(message):
            if message.payload == "bad":
                raise ValueError("rejected")
            return message.payload

        net.register("b", picky)
        good1 = net.call_async("a", "b", MessageKind.PING, "ok-1")
        bad = net.call_async("a", "b", MessageKind.PING, "bad")
        good2 = net.call_async("a", "b", MessageKind.PING, "ok-2")
        assert good1.result() == "ok-1"
        assert isinstance(bad.exception(), ValueError)
        assert good2.result() == "ok-2"

    def test_unknown_destination_fails_the_future(self, net):
        net.register("a", lambda m: None)
        future = net.call_async("a", "ghost", MessageKind.PING)
        assert isinstance(future.exception(), NodeUnreachableError)

    def test_call_many_async_batches_one_frame(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: m.payload * 10)
        net.call("a", "b", MessageKind.PING, 0)  # warm the channel
        before = len(net.trace)
        future = net.call_many_async(
            "a", "b", [(MessageKind.PING, i) for i in range(8)]
        )
        assert future.result() == [i * 10 for i in range(8)]
        assert len(net.trace) - before == 2  # one BATCH frame, one reply

    @pytest.mark.parametrize("mode", ["per-call", "pooled"])
    def test_non_pipelined_modes_complete_eagerly(self, mode):
        network = TcpNetwork(mode=mode)
        try:
            network.register("a", lambda m: None)
            network.register("b", lambda m: m.payload)
            future = network.call_async("a", "b", MessageKind.PING, 5)
            assert future.done()
            assert future.result() == 5
        finally:
            network.shutdown()


class TestFailureIsolation:
    """One bad in-flight call must not corrupt the shared pooled connection."""

    def test_timeout_does_not_disturb_other_waiters(self):
        net = TcpNetwork(io_timeout_s=0.3)
        try:
            net.register("a", lambda m: None)
            release = threading.Event()

            def handler(message):
                if message.payload == "hang":
                    release.wait(5.0)  # well past the io timeout
                    return "late"
                return message.payload

            net.register("b", handler)
            net.call("a", "b", MessageKind.PING, "warm")
            hung = net.call_async("a", "b", MessageKind.PING, "hang")
            fast = net.call_async("a", "b", MessageKind.PING, "quick")
            # The fast call completes promptly despite the hung exchange
            # ahead of it on the same socket.
            assert fast.result(timeout_s=2.0) == "quick"
            with pytest.raises(CallTimeoutError):
                hung.result()
            # The channel survives: the late reply is dropped by the
            # reader (its waiter was discarded), and new exchanges work.
            release.set()
            assert net.call("a", "b", MessageKind.PING, "after") == "after"
            assert net.open_channels() == 1  # still the one pooled connection
        finally:
            net.shutdown()

    def test_blocking_timeout_then_fast_traffic(self):
        """The blocking form of the same isolation property."""
        net = TcpNetwork(io_timeout_s=0.2)
        try:
            net.register("a", lambda m: None)

            def handler(message):
                if message.payload == "hang":
                    time.sleep(0.8)
                return message.payload

            net.register("b", handler)
            net.call("a", "b", MessageKind.PING, "warm")
            errors = []

            def hang_call():
                try:
                    net.call("a", "b", MessageKind.PING, "hang")
                except Exception as exc:
                    errors.append(exc)

            thread = threading.Thread(target=hang_call)
            thread.start()
            time.sleep(0.05)  # let the hung frame hit the wire first
            for i in range(5):
                assert net.call("a", "b", MessageKind.PING, i) == i
            thread.join()
            assert len(errors) == 1
            assert isinstance(errors[0], CallTimeoutError)
        finally:
            net.shutdown()

    def test_hung_hosts_share_one_timeout_window(self):
        """Timeout clocks start at submission: gathering N hung futures
        costs ~one io-timeout window in total, not N stacked windows."""
        net = TcpNetwork(io_timeout_s=0.5)
        try:
            net.register("a", lambda m: None)
            release = threading.Event()

            def handler(message):
                if message.payload == "hang":
                    release.wait(10.0)
                return message.payload

            net.register("b", handler)
            net.call("a", "b", MessageKind.PING, "warm")
            futures = [net.call_async("a", "b", MessageKind.PING, "hang")
                       for _ in range(3)]
            start = time.perf_counter()
            for future in futures:
                with pytest.raises(CallTimeoutError):
                    future.result()
            elapsed = time.perf_counter() - start
            # Serial windows would cost >= 1.5s; shared ones ~0.5s.
            assert elapsed < 1.0, f"timeouts stacked serially: {elapsed:.2f}s"
            release.set()
        finally:
            net.shutdown()

    def test_erroring_calls_interleaved_with_successes(self):
        net = TcpNetwork()
        try:
            net.register("a", lambda m: None)

            def handler(message):
                if message.payload % 3 == 0:
                    raise RuntimeError(f"reject {message.payload}")
                return message.payload

            net.register("b", handler)
            futures = [net.call_async("a", "b", MessageKind.PING, i)
                       for i in range(12)]
            for i, future in enumerate(futures):
                if i % 3 == 0:
                    assert isinstance(future.exception(), RuntimeError)
                else:
                    assert future.result() == i
            assert net.open_channels() == 1
        finally:
            net.shutdown()
