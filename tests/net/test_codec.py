"""Frame codec: negotiation, thresholds, and byte-identical raw framing."""

import pickle
import socket
import struct

import pytest

from repro.errors import MarshalError
from repro.net import codec
from repro.net.message import Message, MessageKind
from repro.net.tcpnet import TcpNetwork, _recv_frame, _send_frame


def _socketpair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


def _roundtrip(message, codec_for=None):
    import threading

    a, b = _socketpair()
    out = {}
    try:
        reader = threading.Thread(
            target=lambda: out.update(zip(("msg", "nbytes"), _recv_frame(b)))
        )
        reader.start()
        _send_frame(a, message, codec_for)
        reader.join(10.0)
        return out["msg"], out["nbytes"]
    finally:
        a.close()
        b.close()


def _wire_bytes(message, codec_for=None):
    import threading

    a, b = _socketpair()
    chunks = []

    def drain():
        while True:
            chunk = b.recv(65536)
            if not chunk:
                return
            chunks.append(chunk)

    try:
        reader = threading.Thread(target=drain)
        reader.start()
        _send_frame(a, message, codec_for)
        a.shutdown(socket.SHUT_WR)
        reader.join(10.0)
        return b"".join(chunks)
    finally:
        a.close()
        b.close()


class TestCodecPrimitives:
    def test_raw_id_is_zero(self):
        # Raw frames must keep the pre-codec prefix bit-for-bit.
        assert codec.RAW == 0

    def test_zlib_always_available(self):
        assert "zlib" in codec.available_codecs()

    def test_unknown_codec_name_rejected(self):
        with pytest.raises(MarshalError):
            codec.codec_id("snappy")

    def test_unknown_codec_id_rejected(self):
        with pytest.raises(MarshalError):
            codec.decode(7, b"data", 1024)

    def test_zlib_roundtrip(self):
        blob = b"abc" * 10_000
        packed = codec.encode(codec.ZLIB, blob)
        assert len(packed) < len(blob)
        assert codec.decode(codec.ZLIB, packed, len(blob)) == blob

    def test_decode_bounds_inflation(self):
        blob = b"x" * 100_000
        packed = codec.encode(codec.ZLIB, blob)
        with pytest.raises(MarshalError):
            codec.decode(codec.ZLIB, packed, max_size=1024)

    def test_choose_codec_negotiation(self):
        # Below threshold: always raw, whatever both sides support.
        assert codec.choose_codec(10, ("zlib",), ("zlib",), 100) == codec.RAW
        # At/above threshold with a shared codec: compress.
        assert codec.choose_codec(100, ("zlib",), ("zlib",), 100) == codec.ZLIB
        # The peer advertises nothing (pre-codec build): fall back to raw.
        assert codec.choose_codec(100, ("zlib",), (), 100) == codec.RAW
        # The sender writes nothing: raw.
        assert codec.choose_codec(100, (), ("zlib",), 100) == codec.RAW


class TestFrameFormat:
    def test_sub_threshold_frame_is_byte_identical_to_pre_codec_format(self):
        """Small control messages must produce the exact pre-PR bytes."""
        message = Message(kind=MessageKind.PING, src="a", dst="b")
        blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        legacy = struct.pack(">I", len(blob)) + blob
        compressing = lambda nbytes: codec.choose_codec(
            nbytes, ("zlib",), ("zlib",), codec.DEFAULT_COMPRESS_THRESHOLD)
        assert _wire_bytes(message, compressing) == legacy
        assert _wire_bytes(message, None) == legacy

    def test_large_frame_compresses_and_roundtrips(self):
        message = Message(kind=MessageKind.INVOKE, src="a", dst="b",
                          payload=b"payload" * 50_000)
        raw_len = len(_wire_bytes(message, None))
        received, nbytes = _roundtrip(
            message, lambda n: codec.choose_codec(n, ("zlib",), ("zlib",), 1024)
        )
        assert received.payload == message.payload
        assert received.msg_id == message.msg_id
        assert nbytes < raw_len / 2  # wire carried the compressed body

    def test_incompressible_frame_falls_back_to_raw(self):
        import os
        message = Message(kind=MessageKind.INVOKE, src="a", dst="b",
                          payload=os.urandom(64 * 1024))
        received, _ = _roundtrip(message, lambda n: codec.ZLIB)
        assert received.payload == message.payload


class TestTcpNegotiation:
    @pytest.fixture
    def net(self):
        # uds=False: negotiation is a *wire* concern, and a same-host
        # Unix-socket channel deliberately skips compression (bandwidth
        # there is free); force TCP so these tests see the network path.
        net = TcpNetwork(compress_threshold=1024, uds=False)
        yield net
        net.shutdown()

    def test_same_host_channel_skips_compression(self, monkeypatch):
        """A provably same-machine (Unix-socket) channel never compresses,
        even for a peer that negotiated zlib — the codec saves network
        bandwidth the channel does not consume."""
        net = TcpNetwork(compress_threshold=1024)  # uds on by default
        try:
            big = b"state" * 100_000
            net.register("src", lambda m: "ok")
            net.register("modern", lambda m: len(m.payload))
            compressions = []
            real_encode = codec.encode
            monkeypatch.setattr(
                codec, "encode",
                lambda ident, blob: compressions.append(ident)
                or real_encode(ident, blob),
            )
            assert net.call("src", "modern", MessageKind.INVOKE, big) == len(big)
            assert compressions == []
        finally:
            net.shutdown()

    def test_registration_advertises_local_codecs(self, net):
        net.register("n1", lambda m: "ok")
        assert net.peer_codecs("n1") == codec.available_codecs()
        assert net.peer_codecs("ghost") == ()

    def test_mixed_codec_peer_falls_back_to_raw(self, net, monkeypatch):
        """A peer advertising no codecs gets raw frames — and the call
        still succeeds (negotiation degrades, never fails)."""
        big = b"state" * 100_000
        net.register("src", lambda m: "ok")
        net.register("legacy", lambda m: len(m.payload))
        net.advertise_codecs("legacy", ())  # a pre-codec build
        compressions = []
        real_encode = codec.encode
        monkeypatch.setattr(
            codec, "encode",
            lambda ident, blob: compressions.append(ident) or real_encode(ident, blob),
        )
        assert net.call("src", "legacy", MessageKind.INVOKE, big) == len(big)
        assert compressions == []  # nothing was ever compressed toward it

    def test_negotiated_peer_gets_compressed_frames(self, net, monkeypatch):
        big = b"state" * 100_000
        net.register("src", lambda m: "ok")
        net.register("modern", lambda m: len(m.payload))
        compressions = []
        real_encode = codec.encode
        monkeypatch.setattr(
            codec, "encode",
            lambda ident, blob: compressions.append(ident) or real_encode(ident, blob),
        )
        assert net.call("src", "modern", MessageKind.INVOKE, big) == len(big)
        assert codec.ZLIB in compressions

    def test_small_calls_never_compress(self, net, monkeypatch):
        net.register("src", lambda m: "ok")
        net.register("dst", lambda m: "pong")
        compressions = []
        real_encode = codec.encode
        monkeypatch.setattr(
            codec, "encode",
            lambda ident, blob: compressions.append(ident) or real_encode(ident, blob),
        )
        assert net.call("src", "dst", MessageKind.PING) == "pong"
        assert compressions == []

    def test_codecs_param_validates_names(self):
        with pytest.raises(MarshalError):
            TcpNetwork(codecs=("snappy",))

    def test_disabled_codecs_keep_everything_raw(self, monkeypatch):
        net = TcpNetwork(codecs=(), compress_threshold=16)
        try:
            net.register("src", lambda m: "ok")
            net.register("dst", lambda m: len(m.payload))
            compressions = []
            real_encode = codec.encode
            monkeypatch.setattr(
                codec, "encode",
                lambda ident, blob: compressions.append(ident)
                or real_encode(ident, blob),
            )
            assert net.call("src", "dst", MessageKind.INVOKE,
                            b"x" * 100_000) == 100_000
            assert compressions == []
        finally:
            net.shutdown()
