"""The real TCP loopback transport."""

import threading
import time

import pytest

from repro.errors import ConfigurationError, NodeUnreachableError
from repro.net.message import Message, MessageKind
from repro.net.tcpnet import MODES, TcpNetwork


@pytest.fixture
def net():
    network = TcpNetwork()
    yield network
    network.shutdown()


class TestTcpDelivery:
    def test_round_trip(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: ("echo", m.payload))
        assert net.call("a", "b", MessageKind.PING, 42) == ("echo", 42)

    def test_payloads_cross_real_sockets(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: sum(m.payload))
        assert net.call("a", "b", MessageKind.PING, list(range(100))) == 4950

    def test_handler_exception_propagates(self, net):
        net.register("a", lambda m: None)

        def boom(message):
            raise ValueError("remote failure")

        net.register("b", boom)
        with pytest.raises(ValueError, match="remote failure"):
            net.call("a", "b", MessageKind.PING)

    def test_unknown_destination(self, net):
        net.register("a", lambda m: None)
        with pytest.raises(NodeUnreachableError):
            net.call("a", "ghost", MessageKind.PING)

    def test_unregistered_node_connection_refused(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: "ok")
        net.unregister("b")
        with pytest.raises(NodeUnreachableError):
            net.call("a", "b", MessageKind.PING)

    def test_each_node_gets_a_port(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        assert net.port_of("a") != net.port_of("b")

    def test_oneway_cast(self, net):
        done = threading.Event()
        net.register("a", lambda m: None)
        net.register("b", lambda m: done.set())
        net.cast("a", "b", MessageKind.AGENT_HOP, "state")
        assert done.wait(timeout=5.0)

    def test_concurrent_calls(self, net):
        net.register("client", lambda m: None)
        net.register("server", lambda m: m.payload * 2)
        results = {}

        def worker(i):
            results[i] = net.call("client", "server", MessageKind.PING, i)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == {i: i * 2 for i in range(8)}

    def test_trace_records_tcp_messages(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: "ok")
        net.call("a", "b", MessageKind.PING)
        kinds = net.trace.kinds()
        assert "PING" in kinds
        assert "REPLY(PING)" in kinds


class TestConnectionModes:
    @pytest.mark.parametrize("mode", MODES)
    def test_round_trip_in_every_mode(self, mode):
        net = TcpNetwork(mode=mode)
        try:
            net.register("a", lambda m: None)
            net.register("b", lambda m: ("echo", m.payload))
            assert net.call("a", "b", MessageKind.PING, 5) == ("echo", 5)
        finally:
            net.shutdown()

    @pytest.mark.parametrize("mode", MODES)
    def test_concurrent_calls_in_every_mode(self, mode):
        net = TcpNetwork(mode=mode)
        try:
            net.register("client", lambda m: None)
            net.register("server", lambda m: m.payload * 2)
            results = {}

            def worker(i):
                results[i] = net.call("client", "server", MessageKind.PING, i)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results == {i: i * 2 for i in range(8)}
        finally:
            net.shutdown()

    def test_pipelined_calls_share_one_connection(self):
        net = TcpNetwork(mode="pipelined")
        try:
            net.register("client", lambda m: None)
            net.register("server", lambda m: m.payload)
            threads = [
                threading.Thread(
                    target=net.call,
                    args=("client", "server", MessageKind.PING, i),
                )
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert net.open_channels() == 1
        finally:
            net.shutdown()

    def test_per_call_mode_pools_nothing(self):
        net = TcpNetwork(mode="per-call")
        try:
            net.register("a", lambda m: None)
            net.register("b", lambda m: "ok")
            net.call("a", "b", MessageKind.PING)
            assert net.open_channels() == 0
        finally:
            net.shutdown()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            TcpNetwork(mode="carrier-pigeon")


class TestConfig:
    def test_retry_budget_is_forwarded(self):
        net = TcpNetwork(retry_budget=3)
        try:
            assert net.retry_budget == 3
        finally:
            net.shutdown()


class TestDropTracing:
    def test_cast_to_unknown_destination_traces_a_drop(self, net):
        net.register("a", lambda m: None)
        net.cast("a", "ghost", MessageKind.AGENT_HOP, "state")  # must not raise
        dropped = [e for e in net.trace.events() if e.dropped]
        assert len(dropped) == 1
        assert dropped[0].kind == "AGENT_HOP"
        assert dropped[0].dst == "ghost"

    def test_per_call_cast_to_unknown_destination_traces_a_drop(self):
        net = TcpNetwork(mode="per-call")
        try:
            net.register("a", lambda m: None)
            net.cast("a", "ghost", MessageKind.AGENT_HOP)
            dropped = [e for e in net.trace.events() if e.dropped]
            assert len(dropped) == 1
        finally:
            net.shutdown()


class TestAtMostOnce:
    def test_duplicate_retransmission_executes_handler_once(self, net):
        """Two concurrent transmissions of one message id (a retry racing
        the delayed original) must run the handler exactly once."""
        started = threading.Event()
        release = threading.Event()
        calls = []

        def slow_handler(message):
            calls.append(message.msg_id)
            started.set()
            release.wait(5)
            return "slow"

        net.register("a", lambda m: None)
        net.register("b", slow_handler)
        message = Message(kind=MessageKind.PING, src="a", dst="b")
        replies = []

        def transmit():
            replies.append(net._transmit(message))

        original = threading.Thread(target=transmit)
        original.start()
        assert started.wait(5)
        retransmission = threading.Thread(target=transmit)
        retransmission.start()
        time.sleep(0.1)  # the duplicate reaches the server mid-flight
        release.set()
        original.join(5)
        retransmission.join(5)
        assert len(calls) == 1
        assert [r.payload.value for r in replies] == ["slow", "slow"]


class TestControlFlowAbort:
    def test_aborted_handler_fails_fast_and_is_not_cached(self, net):
        """A handler dying with KeyboardInterrupt answers the caller with
        an uncached TransportError immediately (no reply-timeout hang);
        a retransmission of the same message id executes afresh."""
        from repro.errors import TransportError
        from repro.net.transport import Transport

        calls = []

        def interrupted_once(message):
            calls.append(1)
            if len(calls) == 1:
                raise KeyboardInterrupt()
            return "recovered"

        net.register("a", lambda m: None)
        net.register("b", interrupted_once)
        message = Message(kind=MessageKind.PING, src="a", dst="b")
        start = time.time()
        reply = net._transmit(message)
        with pytest.raises(TransportError, match="aborted by KeyboardInterrupt"):
            Transport._unwrap(reply)
        assert time.time() - start < 5  # failed fast, no timeout wait
        retry = net._transmit(message)
        assert Transport._unwrap(retry) == "recovered"
        assert len(calls) == 2


class TestRegisterReplacement:
    def test_replacing_a_live_node_changes_port_and_serves_new_handler(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: "old")
        assert net.call("a", "b", MessageKind.PING) == "old"
        old_port = net.port_of("b")
        net.register("b", lambda m: "new")
        assert net.port_of("b") != old_port
        assert net.call("a", "b", MessageKind.PING) == "new"

    def test_in_flight_call_surfaces_unreachable_on_replacement(self, net):
        entered = threading.Event()
        hold = threading.Event()

        def stuck_handler(message):
            entered.set()
            hold.wait(10)
            return "too late"

        net.register("a", lambda m: None)
        net.register("b", stuck_handler)
        outcome = {}

        def caller():
            try:
                outcome["value"] = net.call("a", "b", MessageKind.PING)
            except NodeUnreachableError:
                outcome["unreachable"] = True

        thread = threading.Thread(target=caller)
        thread.start()
        assert entered.wait(5)
        net.register("b", lambda m: "replacement")  # severs the old server
        thread.join(5)
        hold.set()
        assert outcome == {"unreachable": True}
        # The transport recovers: new calls reach the replacement handler.
        assert net.call("a", "b", MessageKind.PING) == "replacement"


class TestCallMany:
    def test_batch_over_tcp(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: ("echo", m.payload))
        values = net.call_many(
            "a", "b", [(MessageKind.PING, i) for i in range(4)]
        )
        assert values == [("echo", i) for i in range(4)]

    def test_batch_rides_one_frame(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: m.payload)
        net.call_many("a", "b", [(MessageKind.PING, i) for i in range(6)])
        assert net.trace.kinds() == ["BATCH", "REPLY(BATCH)"]


class TestEmulatedLinkLatency:
    """The tc-netem-style ``latency_ms`` knob."""

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            TcpNetwork(latency_ms=-1.0)

    def test_delay_is_charged_per_request(self):
        net = TcpNetwork(latency_ms=50.0)
        try:
            net.register("a", lambda m: None)
            net.register("b", lambda m: m.payload)
            start = time.perf_counter()
            assert net.call("a", "b", MessageKind.PING, 1) == 1
            assert time.perf_counter() - start >= 0.05
        finally:
            net.shutdown()

    def test_delayed_requests_still_pipeline(self):
        """Concurrent futures share the link delay instead of queueing.

        Compared against a measured sequential baseline (not an absolute
        wall-clock bound) so a loaded CI runner cannot flake this."""
        net = TcpNetwork(latency_ms=100.0)
        try:
            net.register("a", lambda m: None)
            net.register("b", lambda m: m.payload)
            net.call("a", "b", MessageKind.PING, -1)  # warm the channel
            start = time.perf_counter()
            for i in range(4):
                assert net.call("a", "b", MessageKind.PING, i) == i
            sequential = time.perf_counter() - start
            start = time.perf_counter()
            futures = [net.call_async("a", "b", MessageKind.PING, i)
                       for i in range(4)]
            assert [f.result() for f in futures] == [0, 1, 2, 3]
            overlapped = time.perf_counter() - start
            assert overlapped < 0.6 * sequential, (sequential, overlapped)
        finally:
            net.shutdown()
