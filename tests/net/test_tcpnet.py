"""The real TCP loopback transport."""

import threading

import pytest

from repro.errors import NodeUnreachableError
from repro.net.message import MessageKind
from repro.net.tcpnet import TcpNetwork


@pytest.fixture
def net():
    network = TcpNetwork()
    yield network
    network.shutdown()


class TestTcpDelivery:
    def test_round_trip(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: ("echo", m.payload))
        assert net.call("a", "b", MessageKind.PING, 42) == ("echo", 42)

    def test_payloads_cross_real_sockets(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: sum(m.payload))
        assert net.call("a", "b", MessageKind.PING, list(range(100))) == 4950

    def test_handler_exception_propagates(self, net):
        net.register("a", lambda m: None)

        def boom(message):
            raise ValueError("remote failure")

        net.register("b", boom)
        with pytest.raises(ValueError, match="remote failure"):
            net.call("a", "b", MessageKind.PING)

    def test_unknown_destination(self, net):
        net.register("a", lambda m: None)
        with pytest.raises(NodeUnreachableError):
            net.call("a", "ghost", MessageKind.PING)

    def test_unregistered_node_connection_refused(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: "ok")
        net.unregister("b")
        with pytest.raises(NodeUnreachableError):
            net.call("a", "b", MessageKind.PING)

    def test_each_node_gets_a_port(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        assert net.port_of("a") != net.port_of("b")

    def test_oneway_cast(self, net):
        done = threading.Event()
        net.register("a", lambda m: None)
        net.register("b", lambda m: done.set())
        net.cast("a", "b", MessageKind.AGENT_HOP, "state")
        assert done.wait(timeout=5.0)

    def test_concurrent_calls(self, net):
        net.register("client", lambda m: None)
        net.register("server", lambda m: m.payload * 2)
        results = {}

        def worker(i):
            results[i] = net.call("client", "server", MessageKind.PING, i)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == {i: i * 2 for i in range(8)}

    def test_trace_records_tcp_messages(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: "ok")
        net.call("a", "b", MessageKind.PING)
        kinds = net.trace.kinds()
        assert "PING" in kinds
        assert "REPLY(PING)" in kinds
