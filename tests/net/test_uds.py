"""Same-host Unix-domain-socket transport (tier 2 of the locality ladder).

Two *separate* :class:`TcpNetwork` instances stand in for two processes
on one machine: the only things they share are the endpoints exchanged
through :meth:`connect` and whatever the HELLO handshake carries.  The
suite covers the facet advertisement, the UDS dial itself (asserted on
the live channel's socket family), every degradation path back to plain
TCP (peer without UDS, legacy peer without a handshake, foreign-host
facet), HELLO-driven facet learning for 2-tuple roster entries, and the
peer-eviction hygiene of the auto-batcher (a re-joined peer must start
clean).
"""

import socket
import threading

import pytest

from repro.errors import NodeUnreachableError, TransportError
from repro.net.endpoint import Endpoint
from repro.net.message import MessageKind
from repro.net.tcpnet import _UDS_SUPPORTED, TcpNetwork

pytestmark = pytest.mark.skipif(
    not _UDS_SUPPORTED, reason="platform lacks AF_UNIX sockets"
)


@pytest.fixture
def nets():
    """Factory for independent transports, all shut down afterwards."""
    created = []

    def make(**kwargs):
        network = TcpNetwork(**kwargs)
        created.append(network)
        return network

    yield make
    for network in created:
        network.shutdown()


def link(a, a_node, b, b_node):
    """Cross-connect two transports the way membership gossip would."""
    a.connect(b_node, b.endpoint_of(b_node))
    b.connect(a_node, a.endpoint_of(a_node))


def channel_family(net, src, dst):
    """Address family of the live client channel ``src -> dst``."""
    channel = net._channels[(src, dst)]
    return channel._conn._sock.family


class TestFacetAdvertisement:
    def test_endpoint_of_carries_the_uds_facet(self, nets):
        net = nets()
        net.register("a", lambda m: m.payload)
        endpoint = net.endpoint_of("a")
        assert endpoint.uds
        assert endpoint.uds.startswith("mage-")
        # The facet rides the 3-tuple roster spelling…
        assert endpoint.as_tuple() == (
            endpoint.host, endpoint.port, endpoint.uds
        )
        # …but never the endpoint's identity.
        assert endpoint == Endpoint(endpoint.host, endpoint.port)

    def test_uds_off_advertises_a_plain_endpoint(self, nets):
        net = nets(uds=False)
        net.register("a", lambda m: m.payload)
        endpoint = net.endpoint_of("a")
        assert endpoint.uds == ""
        assert endpoint.as_tuple() == (endpoint.host, endpoint.port)


class TestSameHostDial:
    def test_same_host_peers_speak_over_the_unix_socket(self, nets):
        a, b = nets(), nets()
        a.register("a", lambda m: m.payload)
        b.register("b", lambda m: m.payload * 2)
        link(a, "a", b, "b")
        assert a.call("a", "b", MessageKind.PING, 21) == 42
        assert channel_family(a, "a", "b") == socket.AF_UNIX

    def test_peer_without_uds_degrades_to_tcp(self, nets):
        a, b = nets(), nets(uds=False)
        a.register("a", lambda m: m.payload)
        b.register("b", lambda m: m.payload + 1)
        link(a, "a", b, "b")
        assert a.call("a", "b", MessageKind.PING, 1) == 2
        assert channel_family(a, "a", "b") == socket.AF_INET
        # And the non-UDS peer keeps dialling back over TCP too.
        assert b.call("b", "a", MessageKind.PING, 1) == 1
        assert channel_family(b, "b", "a") == socket.AF_INET

    def test_dialer_with_uds_disabled_ignores_the_facet(self, nets):
        a, b = nets(uds=False), nets()
        a.register("a", lambda m: m.payload)
        b.register("b", lambda m: m.payload)
        link(a, "a", b, "b")
        assert a.call("a", "b", MessageKind.PING, "x") == "x"
        assert channel_family(a, "a", "b") == socket.AF_INET

    def test_legacy_peer_without_handshake_interops_over_tcp(self, nets):
        """A mixed-version cluster: the old build neither handshakes nor
        listens on a Unix socket, yet calls flow in both directions."""
        new, old = nets(), nets(handshake=False, uds=False)
        new.register("n", lambda m: m.payload)
        old.register("o", lambda m: m.payload.upper())
        link(new, "n", old, "o")
        assert new.call("n", "o", MessageKind.PING, "hi") == "HI"
        assert old.call("o", "n", MessageKind.PING, "back") == "back"
        assert channel_family(new, "n", "o") == socket.AF_INET

    def test_foreign_host_facet_is_never_dialled(self, nets):
        """A roster entry for another machine may carry that machine's
        UDS name; the local dialer must strip it, not dial it."""
        net = nets()
        net.connect("far", Endpoint("10.255.0.9", 12345, "mage-12345-far"))
        assert net._dial_address("far").uds == ""

    def test_facet_survives_a_facetless_roster_merge(self, nets):
        """connect() keeps a learned facet when a late 2-tuple roster
        entry (same address, no facet) would otherwise shed it."""
        net = nets()
        net.connect("peer", Endpoint("127.0.0.1", 23456, "mage-23456-peer"))
        net.connect("peer", ("127.0.0.1", 23456))
        assert net.endpoint_of("peer").uds == "mage-23456-peer"


class TestFacetLearning:
    def test_hello_teaches_the_facet_to_a_two_tuple_book_entry(self, nets):
        """A peer connected via a legacy (host, port) roster entry: the
        first exchange runs over TCP, the HELLO advertises the Unix
        socket, and the *next* dial upgrades."""
        a, b = nets(), nets()
        a.register("a", lambda m: m.payload)
        b.register("b", lambda m: m.payload)
        b_endpoint = b.endpoint_of("b")
        a.connect("b", b_endpoint.address())  # 2-tuple: facet unknown
        b.connect("a", a.endpoint_of("a").address())
        assert a.call("a", "b", MessageKind.PING, 7) == 7
        assert channel_family(a, "a", "b") == socket.AF_INET
        # The HELLO answer advertised the facet; the book learned it.
        assert a.endpoint_of("b").uds == b_endpoint.uds
        # A redial (e.g. after a connection drop) takes the fast path.
        a._drop_channels("b")
        assert a.call("a", "b", MessageKind.PING, 8) == 8
        assert channel_family(a, "a", "b") == socket.AF_UNIX


class _Park:
    """Server handler whose ``hang`` payload parks until released."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()

    def __call__(self, message):
        if message.payload == "hang":
            self.started.set()
            self.release.wait(5.0)
            return "hung"
        return message.payload


class TestForgetPeerHygiene:
    def test_forget_peer_fails_queued_autobatch_frames(self, nets):
        """Eviction must tear down the per-peer auto-batcher *without*
        rescuing its queue: frames queued behind an in-flight call fail
        fast, and a re-joined peer starts from a clean channel."""
        net = nets()
        park = _Park()
        net.register("a", lambda m: None)
        net.register("b", park)
        net.call("a", "b", MessageKind.PING, 0)  # warm the channel
        hung = net.call_async("a", "b", MessageKind.PING, "hang")
        assert park.started.wait(5.0)
        # The reply clock is busy: these coalesce in the batcher queue.
        queued = [
            net.call_async("a", "b", MessageKind.PING, i) for i in range(3)
        ]
        net.forget_peer("b")
        for future in queued:
            with pytest.raises((NodeUnreachableError, TransportError)):
                future.result(timeout_s=5.0)
        with pytest.raises(TransportError):
            hung.result(timeout_s=5.0)
        assert net.open_channels() == 0
        park.release.set()
        # "b" re-registers locally, so the peer can be dialled afresh —
        # nothing stale (queued frames, inline state) leaks into the new
        # channel's first exchange.
        assert net.call("a", "b", MessageKind.PING, 99) == 99
        assert net.open_channels() == 1
