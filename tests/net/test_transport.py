"""Transport-shared plumbing: the at-most-once reply cache."""

import threading
import time

from repro.net.message import Message, MessageKind, ReplyPayload
from repro.net.transport import ReplyCache, Transport

import pytest


class TestReplyCache:
    def test_miss_then_hit(self):
        cache = ReplyCache()
        assert cache.get("m1") is None
        cache.put("m1", ReplyPayload(value=1))
        assert cache.get("m1").value == 1

    def test_lru_eviction(self):
        cache = ReplyCache(capacity=2)
        cache.put("a", ReplyPayload(value=1))
        cache.put("b", ReplyPayload(value=2))
        cache.put("c", ReplyPayload(value=3))
        assert cache.get("a") is None  # oldest evicted
        assert cache.get("c").value == 3

    def test_get_refreshes_recency(self):
        cache = ReplyCache(capacity=2)
        cache.put("a", ReplyPayload(value=1))
        cache.put("b", ReplyPayload(value=2))
        cache.get("a")  # refresh: "b" is now oldest
        cache.put("c", ReplyPayload(value=3))
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ReplyCache(capacity=0)


class TestExecuteHandler:
    def _message(self) -> Message:
        return Message(kind=MessageKind.PING, src="a", dst="b")

    def test_executes_once_per_msg_id(self):
        cache = ReplyCache()
        message = self._message()
        calls = []

        def handler(msg):
            calls.append(msg.msg_id)
            return "result"

        first = Transport.execute_handler(message, handler, cache)
        second = Transport.execute_handler(message, handler, cache)
        assert first.value == "result"
        assert second.value == "result"
        assert len(calls) == 1  # the retry replayed the cached reply

    def test_caches_errors_too(self):
        cache = ReplyCache()
        message = self._message()
        calls = []

        def handler(msg):
            calls.append(1)
            raise RuntimeError("failed")

        first = Transport.execute_handler(message, handler, cache)
        second = Transport.execute_handler(message, handler, cache)
        assert first.is_error and second.is_error
        assert len(calls) == 1


class TestSingleFlight:
    """Regression: a retransmission racing a still-running handler must not
    execute the handler a second time (the documented at-most-once
    guarantee for non-idempotent moves)."""

    def _message(self) -> Message:
        return Message(kind=MessageKind.PING, src="a", dst="b")

    def test_concurrent_retransmission_executes_once(self):
        cache = ReplyCache()
        message = self._message()
        started = threading.Event()
        release = threading.Event()
        calls = []

        def handler(msg):
            calls.append(msg.msg_id)
            started.set()
            release.wait(5)
            return "slow result"

        results = []

        def run():
            results.append(Transport.execute_handler(message, handler, cache))

        original = threading.Thread(target=run)
        original.start()
        assert started.wait(5)
        retry = threading.Thread(target=run)  # delayed retransmission
        retry.start()
        time.sleep(0.05)  # let the retry reach the in-flight wait
        release.set()
        original.join(5)
        retry.join(5)
        assert len(calls) == 1
        assert [r.value for r in results] == ["slow result", "slow result"]

    @pytest.mark.parametrize("exc_type", [KeyboardInterrupt, SystemExit])
    def test_control_flow_exceptions_propagate_uncached(self, exc_type):
        cache = ReplyCache()
        message = self._message()

        def interrupted(msg):
            raise exc_type()

        with pytest.raises(exc_type):
            Transport.execute_handler(message, interrupted, cache)
        # Nothing was cached: a later retransmission executes afresh
        # instead of replaying a pickled KeyboardInterrupt forever.
        assert cache.get(message.msg_id) is None
        payload = Transport.execute_handler(message, lambda m: "recovered", cache)
        assert payload.value == "recovered"

    def test_waiter_survives_control_flow_abort(self):
        """A retry parked on a flight that dies with a control-flow
        exception wakes up and executes the handler itself."""
        cache = ReplyCache()
        message = self._message()
        started = threading.Event()
        release = threading.Event()

        def interrupted(msg):
            started.set()
            release.wait(5)
            raise KeyboardInterrupt()

        def original():
            with pytest.raises(KeyboardInterrupt):
                Transport.execute_handler(message, interrupted, cache)

        first = threading.Thread(target=original)
        first.start()
        assert started.wait(5)
        results = []
        second = threading.Thread(
            target=lambda: results.append(
                Transport.execute_handler(message, lambda m: "rerun", cache)
            )
        )
        second.start()
        time.sleep(0.05)
        release.set()
        first.join(5)
        second.join(5)
        assert results and results[0].value == "rerun"


class TestReplyCacheUnderPressure:
    """Concurrency: eviction under capacity pressure while retries race."""

    def test_capacity_bound_holds_under_concurrent_retries(self):
        cache = ReplyCache(capacity=8)
        errors = []

        def churn(tid):
            try:
                for i in range(200):
                    message = Message(
                        kind=MessageKind.PING, src=f"n{tid}", dst="b", payload=i
                    )
                    first = Transport.execute_handler(
                        message, lambda m: m.payload, cache
                    )
                    assert first.value == i
                    # Immediate retry: replays the cached reply, or — if
                    # capacity pressure already evicted it — re-executes.
                    # Either way the value matches and the bound holds.
                    again = Transport.execute_handler(
                        message, lambda m: m.payload, cache
                    )
                    assert again.value == i
                    assert len(cache) <= 8
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        assert len(cache) <= 8

    def test_inflight_retry_wins_despite_eviction_churn(self):
        """A retry that arrives mid-flight gets the flight's reply even
        when the LRU churned through many evictions meanwhile: in-flight
        slots are not evictable."""
        cache = ReplyCache(capacity=2)
        message = Message(kind=MessageKind.PING, src="a", dst="b")
        started = threading.Event()
        release = threading.Event()
        calls = []

        def slow(msg):
            calls.append(1)
            started.set()
            release.wait(5)
            return "flight"

        original = threading.Thread(
            target=Transport.execute_handler, args=(message, slow, cache)
        )
        original.start()
        assert started.wait(5)
        for i in range(10):  # churn the tiny LRU during the flight
            cache.put(f"other-{i}", ReplyPayload(value=i))
        results = []
        retry = threading.Thread(
            target=lambda: results.append(
                Transport.execute_handler(message, slow, cache)
            )
        )
        retry.start()
        time.sleep(0.05)
        release.set()
        original.join(5)
        retry.join(5)
        assert len(calls) == 1
        assert results and results[0].value == "flight"


class TestBatchRetransmission:
    """Regression (at-most-once per sub-id): a retransmitted BATCH whose
    sub-requests already executed must not re-execute them — neither when
    the whole batch reply was lost, nor when only the batch-level cache
    entry survived eviction, nor when the batch failed part-way."""

    def _batch(self, payloads) -> Message:
        subs = tuple(
            Message(kind=MessageKind.PING, src="a", dst="b", payload=p)
            for p in payloads
        )
        return Message(kind=MessageKind.BATCH, src="a", dst="b", payload=subs)

    def test_retransmitted_batch_replays_cached_subreplies(self):
        cache = ReplyCache()
        executed = []

        def handler(msg):
            executed.append(msg.payload)
            return msg.payload * 10

        batch = self._batch([1, 2, 3])
        first = Transport.execute_handler(batch, handler, cache)
        second = Transport.execute_handler(batch, handler, cache)
        assert [p.value for p in first.value] == [10, 20, 30]
        assert [p.value for p in second.value] == [10, 20, 30]
        assert executed == [1, 2, 3]  # each sub-request ran exactly once

    def test_subrequests_survive_batch_entry_eviction(self):
        """Even with the batch-level reply gone, the per-sub-id slots
        protect the sub-requests from re-execution."""
        cache = ReplyCache()
        executed = []

        def handler(msg):
            executed.append(msg.payload)
            return msg.payload

        batch = self._batch(["x", "y"])
        Transport.execute_handler(batch, handler, cache)
        # Simulate the batch-level entry falling to LRU capacity pressure
        # while the (more recent) sub-entries survive.
        shard = cache._shard(batch.msg_id)
        with shard._lock:
            del shard._entries[batch.msg_id]
        replay = Transport.execute_handler(batch, handler, cache)
        assert [p.value for p in replay.value] == ["x", "y"]
        assert executed == ["x", "y"]

    def test_partially_failed_batch_does_not_reexecute_on_retry(self):
        cache = ReplyCache()
        executed = []

        def handler(msg):
            executed.append(msg.payload)
            if msg.payload == "bad":
                raise RuntimeError("sub-request failed")
            return msg.payload

        batch = self._batch(["ok", "bad", "never"])
        first = Transport.execute_handler(batch, handler, cache)
        second = Transport.execute_handler(batch, handler, cache)
        for payload in (first, second):
            assert [p.is_error for p in payload.value] == [False, True]
        # The failing sub stopped the batch; the retry replayed the cached
        # partial outcome without running anything again.
        assert executed == ["ok", "bad"]

    def test_lost_batch_reply_end_to_end(self):
        """Over the simulated network: the BATCH executes, its reply is
        lost, the transport retransmits — sub-requests still run once."""
        from repro.net.conditions import DeterministicLoss
        from repro.net.simnet import SimNetwork

        net = SimNetwork(loss=DeterministicLoss({"REPLY": 1}))
        net.register("a", lambda m: None)
        executed = []

        def handler(msg):
            executed.append(msg.payload)
            return msg.payload + 100

        net.register("b", handler)
        results = net.call_many(
            "a", "b", [(MessageKind.PING, i) for i in range(3)]
        )
        assert results == [100, 101, 102]
        assert executed == [0, 1, 2]
        # The drop really happened (one REPLY(BATCH) attempt was eaten).
        dropped = [e for e in net.trace.events() if e.dropped]
        assert len(dropped) == 1
