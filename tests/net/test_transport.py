"""Transport-shared plumbing: the at-most-once reply cache."""

from repro.net.message import Message, MessageKind, ReplyPayload
from repro.net.transport import ReplyCache, Transport

import pytest


class TestReplyCache:
    def test_miss_then_hit(self):
        cache = ReplyCache()
        assert cache.get("m1") is None
        cache.put("m1", ReplyPayload(value=1))
        assert cache.get("m1").value == 1

    def test_lru_eviction(self):
        cache = ReplyCache(capacity=2)
        cache.put("a", ReplyPayload(value=1))
        cache.put("b", ReplyPayload(value=2))
        cache.put("c", ReplyPayload(value=3))
        assert cache.get("a") is None  # oldest evicted
        assert cache.get("c").value == 3

    def test_get_refreshes_recency(self):
        cache = ReplyCache(capacity=2)
        cache.put("a", ReplyPayload(value=1))
        cache.put("b", ReplyPayload(value=2))
        cache.get("a")  # refresh: "b" is now oldest
        cache.put("c", ReplyPayload(value=3))
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ReplyCache(capacity=0)


class TestExecuteHandler:
    def _message(self) -> Message:
        return Message(kind=MessageKind.PING, src="a", dst="b")

    def test_executes_once_per_msg_id(self):
        cache = ReplyCache()
        message = self._message()
        calls = []

        def handler(msg):
            calls.append(msg.msg_id)
            return "result"

        first = Transport.execute_handler(message, handler, cache)
        second = Transport.execute_handler(message, handler, cache)
        assert first.value == "result"
        assert second.value == "result"
        assert len(calls) == 1  # the retry replayed the cached reply

    def test_caches_errors_too(self):
        cache = ReplyCache()
        message = self._message()
        calls = []

        def handler(msg):
            calls.append(1)
            raise RuntimeError("failed")

        first = Transport.execute_handler(message, handler, cache)
        second = Transport.execute_handler(message, handler, cache)
        assert first.is_error and second.is_error
        assert len(calls) == 1
