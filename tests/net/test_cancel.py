"""CallFuture cancellation and the shared-deadline gather.

Covers:

* ``cancel()`` semantics on the base future (first-wins, idempotent,
  callbacks fire, mapped views);
* native cancellation on the pipelined TCP transport: an in-flight
  exchange is abandoned like a timed-out waiter — the late reply is
  dropped, the shared connection and its other waiters are untouched;
* the no-op shape on the simulated network (futures complete eagerly,
  so straggler-cancelling code is deterministic there);
* the ``gather`` regression from the per-wait timeout era: N slow
  futures must cost one shared timeout window, not N stacked windows;
* ``gather(cancel_stragglers=True)`` leaving no exchange dangling.
"""

import threading
import time

import pytest

from repro.errors import CallCancelledError, CallTimeoutError
from repro.net.deadline import Deadline
from repro.net.message import MessageKind
from repro.net.simnet import SimNetwork
from repro.net.tcpnet import TcpNetwork
from repro.net.transport import CallFuture, gather


@pytest.fixture
def net():
    network = TcpNetwork(io_timeout_s=5.0)
    yield network
    network.shutdown()


class TestCancelSemantics:
    def test_cancel_pending_future(self):
        future = CallFuture("test")
        assert future.cancel("no longer needed")
        assert future.done()
        assert future.cancelled()
        with pytest.raises(CallCancelledError, match="no longer needed"):
            future.result()
        assert isinstance(future.exception(), CallCancelledError)

    def test_cancel_after_completion_is_a_noop(self):
        future = CallFuture.completed("value")
        assert not future.cancel()
        assert not future.cancelled()
        assert future.result() == "value"

    def test_cancel_is_idempotent(self):
        future = CallFuture("test")
        assert future.cancel()
        assert future.cancel()  # already cancelled still reports True
        assert future.cancelled()

    def test_resolve_after_cancel_loses(self):
        future = CallFuture("test")
        future.cancel()
        future._resolve("late")
        assert future.cancelled()
        with pytest.raises(CallCancelledError):
            future.result()

    def test_cancel_fires_done_callbacks(self):
        future = CallFuture("test")
        seen = []
        future.add_done_callback(lambda f: seen.append(f.cancelled()))
        future.cancel()
        assert seen == [True]

    def test_cancelling_a_mapped_view_cancels_the_source(self):
        source = CallFuture("test")
        mapped = source.map(lambda v: v * 2)
        assert mapped.cancel()
        assert source.cancelled()
        assert mapped.cancelled()
        with pytest.raises(CallCancelledError):
            mapped.result()


class TestSimCancellation:
    def test_completed_sweep_cancels_are_noops(self):
        """Straggler-cancelling fan-out code runs unchanged (and is
        deterministic) on the eagerly completing simulated network."""
        sim = SimNetwork()
        sim.register("a", lambda m: None)
        for peer in ("b", "c", "d"):
            sim.register(peer, lambda m: m.payload)
        futures = [sim.call_async("a", p, MessageKind.PING, i)
                   for i, p in enumerate(("b", "c", "d"))]
        winner = futures[0].result()
        for straggler in futures[1:]:
            assert not straggler.cancel("winner found")
        assert winner == 0
        assert [f.result() for f in futures] == [0, 1, 2]

    def test_gather_cancel_stragglers_is_trace_identical(self):
        def run(cancel_stragglers):
            sim = SimNetwork()
            sim.register("a", lambda m: None)
            for peer in ("b", "c"):
                sim.register(peer, lambda m: m.payload)
            futures = [sim.call_async("a", p, MessageKind.PING, i)
                       for i, p in enumerate(("b", "c"))]
            assert gather(futures,
                          cancel_stragglers=cancel_stragglers) == [0, 1]
            return sim.trace.arrows(remote_only=True)

        assert run(True) == run(False)


class TestTcpCancellation:
    def test_cancel_abandons_in_flight_exchange(self, net):
        """Cancelling a hung exchange frees the caller immediately and
        leaves the shared pooled connection healthy."""
        net.register("a", lambda m: None)
        release = threading.Event()

        def handler(message):
            if message.payload == "hang":
                release.wait(5.0)
                return "late"
            return message.payload

        net.register("b", handler)
        net.call("a", "b", MessageKind.PING, "warm")
        hung = net.call_async("a", "b", MessageKind.PING, "hang")
        fast = net.call_async("a", "b", MessageKind.PING, "quick")
        assert hung.cancel("straggler")
        with pytest.raises(CallCancelledError):
            hung.result()
        # Other waiters and later traffic are unaffected; the late reply
        # is dropped by the reader when it finally arrives.
        assert fast.result(timeout_s=2.0) == "quick"
        release.set()
        assert net.call("a", "b", MessageKind.PING, "after") == "after"
        assert net.open_channels() == 1

    def test_cancel_races_reply_first_wins(self, net):
        net.register("a", lambda m: None)
        net.register("b", lambda m: m.payload)
        future = net.call_async("a", "b", MessageKind.PING, "v")
        future.result()  # the reply won
        assert not future.cancel()
        assert future.result() == "v"

    def test_rmi_invocation_future_cancels(self, net):
        """Cancel through the mapped RMI future (stub-level stragglers)."""
        from repro.rmi.client import RmiClient
        from repro.rmi.invoker import Invoker
        from repro.rmi.marshal import unmarshal_call
        from repro.rmi.stub import RemoteRef

        release = threading.Event()

        class Servant:
            def work(self):
                release.wait(5.0)
                return "late"

        servant = Servant()
        invoker = Invoker("b", lambda name: servant, lambda ref: None)
        net.register("a", lambda m: None)
        net.register("b", lambda m: invoker.handle(m.payload))
        client = RmiClient("a", net)
        stub = client.stub_for(RemoteRef(node_id="b", name="svc"))
        future = stub.futures.work()
        assert future.cancel("lost the race")
        with pytest.raises(CallCancelledError):
            future.result()
        release.set()


class BadNews(Exception):
    """The LockMovedError shape: multi-arg __init__, message-only args."""

    def __init__(self, code: int, detail: str):
        super().__init__(f"bad news {code}: {detail}")
        self.code = code
        self.detail = detail


class TestUnpicklableRemoteErrors:
    def test_unpicklable_handler_error_degrades_not_kills_channel(self, net):
        """A handler-raised exception whose default reduction cannot be
        unpickled must surface as RemoteInvocationError on that one call —
        not blow up the reader and fail every waiter on the connection."""
        from repro.errors import RemoteInvocationError

        def handler(message):
            if message.payload == "boom":
                raise BadNews(42, "cannot reconstruct me")
            return message.payload

        net.register("a", lambda m: None)
        net.register("b", handler)
        net.call("a", "b", MessageKind.PING, "warm")
        good = net.call_async("a", "b", MessageKind.PING, "ok")
        bad = net.call_async("a", "b", MessageKind.PING, "boom")
        error = bad.exception()
        assert isinstance(error, RemoteInvocationError)
        assert "BadNews" in str(error) and "bad news 42" in str(error)
        assert good.result(timeout_s=2.0) == "ok"
        # The shared channel survived the poisonous reply.
        assert net.call("a", "b", MessageKind.PING, "after") == "after"
        assert net.open_channels() == 1

    def test_unpicklable_error_inside_a_batch(self, net):
        def handler(message):
            if message.payload == "boom":
                raise BadNews(7, "inside a batch")
            return message.payload

        net.register("a", lambda m: None)
        net.register("b", handler)
        from repro.errors import RemoteInvocationError
        future = net.call_many_async(
            "a", "b", [(MessageKind.PING, "fine"), (MessageKind.PING, "boom")]
        )
        assert isinstance(future.exception(), RemoteInvocationError)
        assert net.call("a", "b", MessageKind.PING, "still-up") == "still-up"

    def test_mage_errors_cross_the_wire_intact(self, net):
        """Our own multi-arg errors define __reduce__ and arrive as
        themselves, attributes included."""
        from repro.errors import LockMovedError

        def handler(message):
            raise LockMovedError("obj", "elsewhere")

        net.register("a", lambda m: None)
        net.register("b", handler)
        error = net.call_async("a", "b", MessageKind.PING).exception()
        assert isinstance(error, LockMovedError)
        assert error.new_location == "elsewhere"


class TestSharedDeadlineGather:
    def test_two_slow_futures_cost_one_window(self, net):
        """The satellite regression: ``gather(timeout_s=...)`` used to
        bound each wait, so two slow futures cost two windows."""
        net.register("a", lambda m: None)
        release = threading.Event()

        def slow(message):
            release.wait(10.0)
            return message.payload

        net.register("b", slow)
        net.call_async("a", "b", MessageKind.PING, "warm").cancel()
        futures = [net.call_async("a", "b", MessageKind.PING, i)
                   for i in range(2)]
        start = time.perf_counter()
        results = gather(futures, timeout_s=0.5, return_exceptions=True)
        elapsed = time.perf_counter() - start
        release.set()
        assert all(isinstance(r, CallTimeoutError) for r in results)
        # One shared window (~0.5 s), not two stacked ones (>= 1.0 s).
        assert elapsed < 0.9, f"waits stacked serially: {elapsed:.2f}s"

    def test_gather_deadline_object_bounds_the_sweep(self, net):
        net.register("a", lambda m: None)
        release = threading.Event()

        def handler(message):
            if message.payload == "hang":
                release.wait(10.0)
            return message.payload

        net.register("b", handler)
        net.call("a", "b", MessageKind.PING, "warm")
        futures = [net.call_async("a", "b", MessageKind.PING, p)
                   for p in ("fast", "hang", "hang")]
        deadline = Deadline.after_ms(400)
        start = time.perf_counter()
        results = gather(futures, deadline=deadline, return_exceptions=True,
                         cancel_stragglers=True)
        elapsed = time.perf_counter() - start
        release.set()
        assert results[0] == "fast"
        assert isinstance(results[1], (CallTimeoutError, CallCancelledError))
        assert isinstance(results[2], (CallTimeoutError, CallCancelledError))
        assert elapsed < 0.9
        # Nothing left pending: every future reached a terminal state.
        assert all(f.done() for f in futures)

    def test_cancel_stragglers_on_abort(self, net):
        """A fail-fast gather cancels what it never collected."""
        net.register("a", lambda m: None)
        release = threading.Event()

        def handler(message):
            if message.payload == "bad":
                raise ValueError("rejected")
            if message.payload == "hang":
                release.wait(10.0)
            return message.payload

        net.register("b", handler)
        net.call("a", "b", MessageKind.PING, "warm")
        bad = net.call_async("a", "b", MessageKind.PING, "bad")
        hung = net.call_async("a", "b", MessageKind.PING, "hang")
        with pytest.raises(ValueError, match="rejected"):
            gather([bad, hung], cancel_stragglers=True)
        assert hung.cancelled()
        release.set()

    def test_unbounded_gather_unchanged(self):
        sim = SimNetwork()
        sim.register("a", lambda m: None)
        sim.register("b", lambda m: m.payload)
        futures = [sim.call_async("a", "b", MessageKind.PING, i)
                   for i in range(3)]
        assert gather(futures) == [0, 1, 2]
