"""Namespace lifecycle and the external dispatcher's edge cases."""

import pytest

from repro.errors import (
    LockMovedError,
    MageError,
    NodeUnreachableError,
)
from repro.net.message import Message, MessageKind
from repro.net.simnet import SimNetwork
from repro.rmi.protocol import LockRequestPayload
from repro.runtime.namespace import Namespace
from repro.bench.workloads import Counter


class TestNamespaceLifecycle:
    def test_running_after_construction(self):
        net = SimNetwork()
        ns = Namespace("solo", net)
        assert ns.running
        assert net.nodes() == ["solo"]

    def test_shutdown_detaches(self):
        net = SimNetwork()
        ns = Namespace("solo", net)
        other = Namespace("other", net)
        ns.shutdown()
        assert not ns.running
        with pytest.raises(NodeUnreachableError):
            other.server.ping("solo")

    def test_shutdown_idempotent(self):
        net = SimNetwork()
        ns = Namespace("solo", net)
        ns.shutdown()
        ns.shutdown()

    def test_objects_survive_shutdown_locally(self):
        """Like a crashed JVM: state exists but is unreachable."""
        net = SimNetwork()
        ns = Namespace("solo", net)
        ns.register("c", Counter(9))
        ns.shutdown()
        assert ns.store.get("c").get() == 9

    def test_validates_node_id(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Namespace("bad id", SimNetwork())

    def test_repr(self):
        ns = Namespace("solo", SimNetwork())
        ns.register("c", Counter())
        assert "solo" in repr(ns)
        assert "objects=1" in repr(ns)

    def test_load_provider_swap(self, pair):
        pair["alpha"].namespace.set_load_provider(lambda: 42.0)
        assert pair["beta"].namespace.query_load("alpha") == 42.0


class TestDispatcherEdges:
    def test_unknown_message_kind_is_refused(self, pair):
        message = Message(kind=MessageKind.REPLY, src="beta", dst="alpha")
        with pytest.raises(MageError, match="cannot handle"):
            pair["alpha"].namespace.external.handle(message)

    def test_lock_request_for_departed_object_redirects(self, pair):
        """LOCK_REQUEST at the old host answers with the new location."""
        pair["alpha"].register("c", Counter())
        pair["alpha"].namespace.move("c", "beta")
        request = LockRequestPayload(name="c", target="alpha",
                                     requester="gamma")
        message = Message(
            kind=MessageKind.LOCK_REQUEST, src="gamma", dst="alpha",
            payload=request,
        )
        with pytest.raises(LockMovedError) as excinfo:
            pair["alpha"].namespace.external.handle(message)
        assert excinfo.value.new_location == "beta"

    def test_ping_and_load(self, pair):
        assert pair["alpha"].namespace.server.ping("beta")
        pair["beta"].set_load(7.0)
        assert pair["alpha"].namespace.query_load("beta") == 7.0

    def test_agent_hop_without_manager_is_refused(self):
        net = SimNetwork(synchronous_casts=True)
        bare = Namespace("bare", net)  # no agent manager attached
        message = Message(
            kind=MessageKind.AGENT_HOP, src="bare", dst="bare", payload=None
        )
        with pytest.raises(MageError, match="accepts no agents"):
            bare.external.handle(message)
