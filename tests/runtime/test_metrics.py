"""Per-namespace metrics collection."""

from repro.runtime.metrics import METRICS_HEADER, collect, collect_cluster
from repro.bench.workloads import Counter


class TestCollect:
    def test_traffic_attribution(self, pair):
        pair["beta"].register("c", Counter())
        stub = pair["alpha"].stub("c", location="beta")
        stub.increment()
        stub.increment()
        alpha = collect(pair["alpha"].namespace, pair.trace)
        beta = collect(pair["beta"].namespace, pair.trace)
        assert beta.invocations_served == 2
        assert alpha.invocations_served == 0
        assert alpha.messages_out == beta.messages_in
        assert alpha.bytes_out == beta.bytes_in
        assert alpha.bytes_out > 0

    def test_move_counters(self, pair):
        pair["alpha"].register("c", Counter())
        pair["alpha"].namespace.move("c", "beta")
        alpha = collect(pair["alpha"].namespace, pair.trace)
        beta = collect(pair["beta"].namespace, pair.trace)
        assert alpha.moves_out == 1
        assert beta.moves_in == 1
        assert alpha.objects_hosted == 0
        assert beta.objects_hosted == 1

    def test_class_cache_counters(self, pair):
        pair["alpha"].register("c1", Counter())
        pair["alpha"].register("c2", Counter())
        pair["alpha"].namespace.move("c1", "beta")
        pair["alpha"].namespace.move("c2", "beta")
        beta = collect(pair["beta"].namespace, pair.trace)
        assert beta.class_loads == 1       # one exec
        assert beta.class_cache_hits >= 1  # second arrival hit the cache

    def test_lock_counters(self, pair):
        pair["alpha"].register("c", Counter())
        grant = pair["alpha"].namespace.lock("c", "alpha")
        pair["alpha"].namespace.unlock(grant)
        grant = pair["beta"].namespace.lock("c", "beta", origin_hint="alpha")
        pair["beta"].namespace.unlock(grant)
        alpha = collect(pair["alpha"].namespace, pair.trace)
        assert alpha.stays_granted == 1
        assert alpha.moves_granted == 1

    def test_find_service_counter(self, trio):
        trio["alpha"].register("c", Counter())
        trio["gamma"].find("c", origin_hint="alpha")
        alpha = collect(trio["alpha"].namespace, trio.trace)
        assert alpha.finds_served == 1

    def test_local_traffic_excluded(self, pair):
        pair["alpha"].register("c", Counter())
        pair["alpha"].find("c")  # purely local consultation
        alpha = collect(pair["alpha"].namespace, pair.trace)
        assert alpha.messages_in == 0
        assert alpha.messages_out == 0


class TestClusterReport:
    def test_collect_cluster_covers_every_node(self, trio):
        trio["alpha"].register("c", Counter())
        trio["alpha"].namespace.move("c", "beta")
        rows = collect_cluster(trio)
        assert [m.node_id for m in rows] == ["alpha", "beta", "gamma"]
        assert sum(m.objects_hosted for m in rows) == 1

    def test_row_matches_header(self, pair):
        metrics = collect(pair["alpha"].namespace, pair.trace)
        assert len(metrics.row()) == len(METRICS_HEADER)

    def test_bytes_conservation(self, trio):
        """Every byte sent by someone is received by someone."""
        trio["alpha"].register("c", Counter())
        trio["alpha"].namespace.move("c", "beta")
        trio["gamma"].find("c", origin_hint="alpha")
        rows = collect_cluster(trio)
        assert sum(m.bytes_out for m in rows) == sum(m.bytes_in for m in rows)
        assert sum(m.messages_out for m in rows) == sum(m.messages_in for m in rows)
