"""Lock/move chases: LockMovedError under concurrent migration, deadline
bounds, and the hedged (speculative-parallel) variants.

The §4.4 chase path: a LOCK_REQUEST that arrives after its object moved
gets a ``LockMovedError`` carrying the new location and re-requests there.
This file covers:

* the chase under *concurrent* migration — the object moves between the
  requester's ``find`` and its LOCK_REQUEST, repeatedly;
* the wall-clock bound (satellite): a chase is limited by the caller's
  cumulative ``timeout_ms``/deadline, not only by ``MAX_LOCK_CHASES``;
* hedged ``lock``/``move``: speculative requests to the last-known host
  and the origin hint in parallel, first grant/host wins, losers
  cancelled — deterministic on the simulated network, genuinely
  concurrent (and straggler-cancelling) on pipelined TCP;
* ``locate_any`` straggler cancellation on both transports.
"""

import threading
import time

import pytest

from repro.cluster import Cluster
from repro.errors import (
    LockError,
    LockMovedError,
    LockTimeoutError,
    NoSuchObjectError,
)
from repro.net.deadline import Deadline, deadline_scope
from repro.net.tcpnet import TcpNetwork
from repro.rmi.protocol import LockRequestPayload
from repro.runtime.locks import MOVE, STAY


class Payload:
    def __init__(self, value: int = 0):
        self.value = value

    def bump(self) -> int:
        self.value += 1
        return self.value


class TestChaseUnderConcurrentMigration:
    def test_single_hop_chase_follows_the_move(self, trio):
        """Object moves between find and LOCK_REQUEST: the stale host
        answers LockMovedError and the chase lands at the new host."""
        alpha, beta = trio["alpha"], trio["beta"]
        alpha.register("obj", Payload(), shared=True)
        location = beta.namespace.server.find("obj", origin_hint="alpha")
        assert location == "alpha"
        # Concurrent migration: the object leaves before beta's request.
        alpha.namespace.move("obj", "gamma")
        grant = beta.namespace.lock("obj", "gamma", origin_hint="alpha")
        assert grant.location == "gamma"
        assert grant.kind == STAY  # target == hosting namespace
        beta.namespace.unlock(grant)

    def test_chase_across_several_hops(self, make_cluster):
        """A handler-driven relay: every LOCK_REQUEST to a stale host
        hands back the next hop; the chase follows to termination."""
        cluster = make_cluster(["n0", "n1", "n2", "n3"])
        cluster["n0"].register("obj", Payload(), shared=True)
        requester = cluster["n3"].namespace
        # Prime the requester's view, then migrate down the chain.
        assert requester.find("obj", origin_hint="n0") == "n0"
        cluster["n0"].namespace.move("obj", "n1")
        cluster["n1"].namespace.move("obj", "n2")
        grant = requester.lock("obj", "n2", origin_hint="n0")
        assert grant.location == "n2"
        requester.unlock(grant)

    def test_mid_wait_departure_fails_over(self, pair):
        """A queued waiter is failed over (LockMovedError) when the move
        holder ships the object away mid-wait."""
        alpha, beta = pair["alpha"], pair["beta"]
        alpha.register("obj", Payload(), shared=True)
        move_grant = alpha.namespace.lock("obj", "beta")
        assert move_grant.kind == MOVE
        outcome = {}

        def contender():
            try:
                outcome["grant"] = beta.namespace.lock(
                    "obj", "beta", origin_hint="alpha", timeout_ms=5000
                )
            except Exception as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=contender)
        thread.start()
        time.sleep(0.1)  # let the contender queue at alpha
        alpha.namespace.move("obj", "beta", lock_token=move_grant.token)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        # The contender either chased to beta and got its (stay) grant, or
        # the race let it in at alpha pre-departure; never an error.
        assert "error" not in outcome, outcome.get("error")
        grant = outcome["grant"]
        assert grant.location == "beta"
        beta.namespace.unlock(grant)


class TestDeadlineBoundedChase:
    def test_cumulative_timeout_beats_max_chases(self, trio):
        """A ping-ponging object must exhaust the caller's wall-clock
        budget, not MAX_LOCK_CHASES x io-timeout."""
        alpha, beta, gamma = trio["alpha"], trio["beta"], trio["gamma"]
        alpha.register("obj", Payload(), shared=True)

        # Every LOCK_REQUEST at the current host is answered only after
        # the object has already left: endless LockMovedError hops.
        from repro.net.message import MessageKind

        hosts = {"alpha": alpha, "beta": beta, "gamma": gamma}
        next_hop = {"alpha": "beta", "beta": "gamma", "gamma": "alpha"}

        def chasing_handler(node_id, orig):
            def always_moved(request):
                ns = hosts[node_id].namespace
                if ns.store.contains(request.name):
                    nxt = next_hop[node_id]
                    ns.move(request.name, nxt)
                    raise LockMovedError(request.name, nxt)
                return orig(request)

            return always_moved

        for node_id, node in hosts.items():
            handlers = node.namespace.external._handlers
            handlers[MessageKind.LOCK_REQUEST] = chasing_handler(
                node_id, handlers[MessageKind.LOCK_REQUEST]
            )

        start = time.perf_counter()
        with pytest.raises((LockTimeoutError, LockError)):
            beta.namespace.lock("obj", "beta", origin_hint="alpha",
                                timeout_ms=300)
        elapsed = time.perf_counter() - start
        # The old behaviour allowed up to MAX_LOCK_CHASES server-side
        # waits of timeout_ms each; the cumulative bound stops within
        # roughly one budget.
        assert elapsed < 2.0, f"chase outlived its budget: {elapsed:.2f}s"

    def test_deadline_object_bounds_the_chase(self, pair):
        alpha, beta = pair["alpha"], pair["beta"]
        alpha.register("obj", Payload(), shared=True)
        blocker = alpha.namespace.lock("obj", "beta")  # exclusive move lock
        start = time.perf_counter()
        with pytest.raises(LockTimeoutError):
            beta.namespace.lock("obj", "beta", origin_hint="alpha",
                                deadline=Deadline.after_ms(200))
        assert time.perf_counter() - start < 2.0
        alpha.namespace.unlock(blocker)

    def test_grant_at_the_buzzer_is_released_not_leaked(self, pair):
        """A lock granted after the caller's propagated deadline lapsed
        would answer an abandoned waiter (the reply is dropped) — the
        dispatcher must give the grant back instead of leaking it."""
        alpha = pair["alpha"].namespace
        alpha.register("obj", Payload(), shared=True)
        request = LockRequestPayload(name="obj", target="alpha",
                                     requester="beta", wait_ms=None)
        expired = Deadline.after_ms(0)
        time.sleep(0.002)
        # Drive the dispatcher directly under an expired dispatch deadline,
        # simulating the race where the grant lands just past expiry
        # (normal admission would have dropped a request this late).
        with deadline_scope(expired):
            with pytest.raises(LockTimeoutError):
                alpha.external._on_lock(request)
        # The uncollectable grant was released: no holders remain and a
        # fresh request is granted immediately.
        assert alpha.locks.snapshot("obj") == {
            "stays": 0, "move": False, "queued": 0, "moved_to": None,
            "departing": False,
        }
        grant = alpha.lock("obj", "beta", timeout_ms=500)
        alpha.unlock(grant)

    def test_zero_budget_lock_fails_fast(self, pair):
        alpha, beta = pair["alpha"], pair["beta"]
        alpha.register("obj", Payload(), shared=True)
        expired = Deadline.after_ms(0)
        time.sleep(0.002)
        with pytest.raises((LockTimeoutError, Exception)):
            beta.namespace.lock("obj", "beta", origin_hint="alpha",
                                deadline=expired)


class TestHedgedLock:
    def test_hedged_lock_wins_via_origin_hint(self, make_cluster):
        """Last-known host is stale; the origin's forwarding answer leads
        the second round straight to the real host."""
        cluster = make_cluster(["origin", "stale", "home", "issuer"])
        cluster["origin"].register("obj", Payload(), shared=True)
        cluster["origin"].namespace.move("obj", "stale")
        cluster["stale"].namespace.move("obj", "home")
        # origin's table collapsed to "home" by a verified find.
        assert cluster["origin"].namespace.find("obj") == "home"
        issuer = cluster["issuer"].namespace
        issuer.registry.note_location("obj", "stale")  # stale knowledge
        grant = issuer.lock("obj", "home", origin_hint="origin", hedge=True)
        assert grant.location == "home"
        assert grant.kind == STAY
        # The winner was recorded for the next operation.
        assert issuer.registry.forwarding_hint("obj") == "home"
        issuer.unlock(grant)

    def test_hedged_lock_local_object(self, pair):
        alpha = pair["alpha"]
        alpha.register("obj", Payload(), shared=True)
        grant = alpha.namespace.lock("obj", "alpha", hedge=True)
        assert grant.location == "alpha"
        assert grant.kind == STAY
        alpha.namespace.unlock(grant)

    def test_hedged_lock_no_knowledge_falls_back_to_find(self, pair):
        alpha, beta = pair["alpha"], pair["beta"]
        alpha.register("obj", Payload(), shared=True)
        # beta has no forwarding entry and no origin hint: find() resolves
        # via... nothing. Expect the find's ComponentNotFoundError family.
        with pytest.raises(Exception):
            beta.namespace.lock("obj", "beta", hedge=True)
        # With the origin hint it succeeds.
        grant = beta.namespace.lock("obj", "beta", origin_hint="alpha",
                                    hedge=True)
        assert grant.location == "alpha"
        assert grant.kind == MOVE
        beta.namespace.unlock(grant)

    def test_hedged_lock_deadline_expires(self, pair):
        alpha, beta = pair["alpha"], pair["beta"]
        alpha.register("obj", Payload(), shared=True)
        blocker = alpha.namespace.lock("obj", "beta")
        with pytest.raises(LockTimeoutError):
            beta.namespace.lock("obj", "beta", origin_hint="alpha",
                                hedge=True, deadline=Deadline.after_ms(150))
        alpha.namespace.unlock(blocker)

    def test_abandoned_unbounded_probe_cannot_leak_a_grant(self):
        """Regression: with no deadline at all, a hedged probe must not ask
        the server to queue past the client's io window — a grant issued
        after the client abandoned the exchange would leak forever."""
        net = TcpNetwork(io_timeout_s=0.3)
        with Cluster(["alpha", "beta"], transport=net) as cluster:
            alpha = cluster["alpha"].namespace
            beta = cluster["beta"].namespace
            alpha.register("obj", Payload(), shared=True)
            blocker = alpha.lock("obj", "beta")  # exclusive move lock
            # The object never moved, so the hung chase reads as a lock
            # timeout (same taxonomy as the sequential path), not "kept
            # moving".
            with pytest.raises(LockTimeoutError):
                beta.lock("obj", "beta", origin_hint="alpha", hedge=True)
            # The client has given up; now the holder releases.  The
            # queued probe must have timed out server-side (not be granted
            # into the void).
            alpha.unlock(blocker)
            time.sleep(0.5)  # any leaked grant would have landed by now
            snap = alpha.locks.snapshot("obj")
            assert snap["move"] is False and snap["stays"] == 0, snap
            # The object is lockable again, immediately.
            grant = beta.lock("obj", "beta", origin_hint="alpha",
                              timeout_ms=2000)
            beta.unlock(grant)

    def test_hedged_lock_on_tcp_cancels_the_stalled_loser(self):
        """Pipelined TCP: the stale host stalls; the origin's fast answer
        wins and the straggler probe is cancelled, so the hedged lock
        completes in far less than the stall."""
        net = TcpNetwork(io_timeout_s=5.0)
        stall = threading.Event()
        with Cluster(["origin", "stale", "home", "issuer"],
                     transport=net) as cluster:
            cluster["origin"].register("obj", Payload(), shared=True)
            cluster["origin"].namespace.move("obj", "stale")
            cluster["stale"].namespace.move("obj", "home")
            assert cluster["origin"].namespace.find("obj") == "home"

            # Wrap the stale node's dispatcher with a hard stall.
            inner = cluster["stale"].namespace.external.handle

            def stalled(message):
                stall.wait(2.0)
                return inner(message)

            net.register("stale", stalled)

            issuer = cluster["issuer"].namespace
            issuer.registry.note_location("obj", "stale")
            start = time.perf_counter()
            grant = issuer.lock("obj", "home", origin_hint="origin",
                                hedge=True, deadline=Deadline.after_s(10))
            elapsed = time.perf_counter() - start
            assert grant.location == "home"
            assert elapsed < 1.0, (
                f"hedged lock waited out the stall: {elapsed:.2f}s"
            )
            issuer.unlock(grant)
            stall.set()


class TestHedgedMove:
    def test_hedged_move_from_stale_knowledge(self, make_cluster):
        cluster = make_cluster(["origin", "home", "issuer", "dest"])
        cluster["origin"].register("obj", Payload(), shared=True)
        cluster["origin"].namespace.move("obj", "home")
        issuer = cluster["issuer"].namespace
        issuer.registry.note_location("obj", "origin")  # stale
        new_location = issuer.move("obj", "dest", origin_hint="home",
                                   hedge=True)
        assert new_location == "dest"
        assert cluster["dest"].namespace.store.contains("obj")
        assert not cluster["home"].namespace.store.contains("obj")

    def test_hedged_move_single_candidate_takes_plain_path(self, pair):
        alpha, beta = pair["alpha"], pair["beta"]
        alpha.register("obj", Payload(), shared=True)
        assert beta.namespace.move("obj", "beta", origin_hint="alpha",
                                   hedge=True) == "beta"
        assert beta.namespace.store.contains("obj")

    def test_stale_hint_equal_to_target_cannot_fake_the_move(self, make_cluster):
        """A non-host probed on a stale hint that happens to *be* the move
        target must answer NoSuchObjectError, not claim the object already
        stayed — the real host performs the move."""
        cluster = make_cluster(["a", "b", "c"])
        cluster["c"].register("obj", Payload(), shared=True)
        issuer = cluster["a"].namespace
        issuer.registry.note_location("obj", "b")  # stale, and == target
        assert issuer.move("obj", "b", origin_hint="c", hedge=True) == "b"
        assert cluster["b"].namespace.store.contains("obj")
        assert not cluster["c"].namespace.store.contains("obj")

    def test_hedged_move_all_misses_falls_back_to_find(self, make_cluster):
        cluster = make_cluster(["a", "b", "c", "issuer"])
        cluster["a"].register("obj", Payload(), shared=True)
        cluster["a"].namespace.move("obj", "b")
        issuer = cluster["issuer"].namespace
        # Both hints are wrong; neither "c" nor stale "a" hosts it.  "a"
        # holds a forwarding address though, so the fallback find walks
        # a -> b and the move lands.
        issuer.registry.note_location("obj", "c")
        assert issuer.move("obj", "issuer", origin_hint="a",
                           hedge=True) == "issuer"
        assert issuer.store.contains("obj")


class TestLocateStragglerCancellation:
    def test_sim_locate_any_matches_sequential_winner(self, make_cluster):
        cluster = make_cluster(["n0", "n1", "n2"])
        cluster["n1"].register("obj", Payload(), shared=True)
        issuer = cluster["n0"].namespace.server
        where = issuer.locate_any("obj", ["n0", "n1", "n2"],
                                  origin_hint="n1")
        assert where == "n1"

    def test_tcp_locate_any_cancels_stalled_probe(self):
        net = TcpNetwork(io_timeout_s=5.0)
        stall = threading.Event()
        with Cluster(["hung", "holder", "issuer"], transport=net) as cluster:
            cluster["holder"].register("obj", Payload(), shared=True)
            inner = cluster["hung"].namespace.external.handle

            def stalled(message):
                stall.wait(2.0)
                return inner(message)

            net.register("hung", stalled)
            issuer = cluster["issuer"].namespace.server
            start = time.perf_counter()
            where = issuer.locate_any(
                "obj", ["hung", "holder"], origin_hint="holder",
                deadline=Deadline.after_s(10),
            )
            elapsed = time.perf_counter() - start
            assert where == "holder"
            assert elapsed < 1.0, (
                f"locate waited for the hung probe: {elapsed:.2f}s"
            )
            stall.set()

    def test_no_deadline_collection_is_bounded_by_io_timeout(self):
        """Regression: without a deadline, a completion-order collect over
        a never-replying host must fall back to the transport's own io
        timeout (as blocking result() always did), not hang forever."""
        net = TcpNetwork(io_timeout_s=0.4)
        hang = threading.Event()
        with Cluster(["hung", "holder", "issuer"], transport=net) as cluster:
            cluster["holder"].register("obj", Payload(), shared=True)

            def black_hole(message):
                hang.wait(30.0)  # far past the io timeout; never replies

            net.register("hung", black_hole)
            issuer = cluster["issuer"].namespace
            server = issuer.server
            # locate_any with NO deadline: the hung probe times itself out.
            start = time.perf_counter()
            assert server.locate_any("obj", ["hung", "holder"]) == "holder"
            assert time.perf_counter() - start < 5.0
            # Hedged lock with NO deadline/timeout: stale hint names the
            # black hole; the origin-hint probe wins, the hung probe is
            # cancelled, and nothing waits past the io window.
            issuer.registry.note_location("obj", "hung")
            start = time.perf_counter()
            grant = issuer.lock("obj", "holder", origin_hint="holder",
                                hedge=True)
            assert time.perf_counter() - start < 5.0
            assert grant.location == "holder"
            issuer.unlock(grant)
            # All-candidates-hung: the chase terminates with an error
            # instead of hanging (each probe pays at most one io window).
            issuer.registry.note_location("obj", "hung")
            start = time.perf_counter()
            with pytest.raises(Exception):
                issuer.lock("obj", "holder", origin_hint="hung", hedge=True)
            assert time.perf_counter() - start < 5.0
            hang.set()

    def test_locate_any_deadline_expiry_cancels_everything(self):
        net = TcpNetwork(io_timeout_s=5.0)
        stall = threading.Event()
        with Cluster(["hung", "issuer"], transport=net) as cluster:
            inner = cluster["hung"].namespace.external.handle

            def stalled(message):
                stall.wait(2.0)
                return inner(message)

            net.register("hung", stalled)
            issuer = cluster["issuer"].namespace.server
            start = time.perf_counter()
            with pytest.raises(Exception, match="deadline|resolve"):
                issuer.locate_any("missing", ["hung"],
                                  deadline=Deadline.after_ms(300))
            assert time.perf_counter() - start < 1.5
            stall.set()
