"""Stay/move locking (§4.4): kinds, exclusivity, unfairness, movement."""

import threading
import time

import pytest

from repro.errors import LockError, LockMovedError, LockTimeoutError
from repro.runtime.locks import LockManager, MOVE, STAY


@pytest.fixture
def locks():
    return LockManager("alpha")


class TestKindSelection:
    def test_target_here_is_stay(self, locks):
        grant = locks.acquire("obj", target="alpha", requester="client")
        assert grant.kind == STAY

    def test_target_elsewhere_is_move(self, locks):
        grant = locks.acquire("obj", target="beta", requester="client")
        assert grant.kind == MOVE

    def test_grant_records_location(self, locks):
        grant = locks.acquire("obj", target="alpha", requester="client")
        assert grant.location == "alpha"


class TestCompatibility:
    def test_many_stays_coexist(self, locks):
        grants = [
            locks.acquire("obj", "alpha", f"client{i}") for i in range(5)
        ]
        assert all(g.kind == STAY for g in grants)

    def test_move_is_exclusive_against_stays(self, locks):
        stay = locks.acquire("obj", "alpha", "reader")
        with pytest.raises(LockTimeoutError):
            locks.acquire("obj", "beta", "mover", timeout_ms=50)
        locks.release("obj", stay.token)
        move = locks.acquire("obj", "beta", "mover", timeout_ms=500)
        assert move.kind == MOVE

    def test_move_blocks_move(self, locks):
        locks.acquire("obj", "beta", "mover1")
        with pytest.raises(LockTimeoutError):
            locks.acquire("obj", "gamma", "mover2", timeout_ms=50)

    def test_move_blocks_stay(self, locks):
        locks.acquire("obj", "beta", "mover")
        with pytest.raises(LockTimeoutError):
            locks.acquire("obj", "alpha", "reader", timeout_ms=50)

    def test_release_wakes_waiter(self, locks):
        move = locks.acquire("obj", "beta", "mover")
        acquired = threading.Event()

        def waiter():
            locks.acquire("obj", "alpha", "reader")
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        locks.release("obj", move.token)
        assert acquired.wait(timeout=2.0)
        thread.join()


class TestUnfairness:
    def test_stays_jump_queued_moves(self, locks):
        """The paper: locking 'unfairly favors invocations that stay'."""
        first_stay = locks.acquire("obj", "alpha", "reader0")
        move_waiting = threading.Event()
        move_granted = threading.Event()

        def mover():
            move_waiting.set()
            locks.acquire("obj", "beta", "mover")
            move_granted.set()

        thread = threading.Thread(target=mover)
        thread.start()
        move_waiting.wait()
        time.sleep(0.05)  # ensure the move is queued
        # A new stay must be granted immediately despite the queued move.
        late_stay = locks.acquire("obj", "alpha", "reader1", timeout_ms=200)
        assert late_stay.kind == STAY
        assert not move_granted.is_set()
        locks.release("obj", first_stay.token)
        locks.release("obj", late_stay.token)
        assert move_granted.wait(timeout=2.0)
        thread.join()

    def test_fair_mode_queues_stays_behind_moves(self):
        locks = LockManager("alpha", fair=True)
        first_stay = locks.acquire("obj", "alpha", "reader0")
        move_started = threading.Event()
        results = []

        def mover():
            move_started.set()
            grant = locks.acquire("obj", "beta", "mover")
            results.append(("move", grant.kind))
            locks.release("obj", grant.token)

        thread = threading.Thread(target=mover)
        thread.start()
        move_started.wait()
        time.sleep(0.05)
        # In FIFO mode the late stay must wait behind the queued move.
        with pytest.raises(LockTimeoutError):
            locks.acquire("obj", "alpha", "reader1", timeout_ms=100)
        locks.release("obj", first_stay.token)
        thread.join()
        assert results == [("move", MOVE)]

    def test_moves_fifo_among_themselves(self, locks):
        order = []
        first = locks.acquire("obj", "beta", "m1")
        started = [threading.Event(), threading.Event()]

        def mover(idx, target):
            started[idx].set()
            grant = locks.acquire("obj", target, f"m{idx + 2}")
            order.append(idx)
            locks.release("obj", grant.token)

        t0 = threading.Thread(target=mover, args=(0, "gamma"))
        t0.start()
        started[0].wait()
        time.sleep(0.05)
        t1 = threading.Thread(target=mover, args=(1, "delta"))
        t1.start()
        started[1].wait()
        time.sleep(0.05)
        locks.release("obj", first.token)
        t0.join()
        t1.join()
        assert order == [0, 1]


class TestMovement:
    def test_mark_moved_fails_waiters_over(self, locks):
        holder = locks.acquire("obj", "beta", "mover")
        failures = []

        def waiter():
            try:
                locks.acquire("obj", "alpha", "reader")
            except LockMovedError as exc:
                failures.append(exc.new_location)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        locks.mark_moved("obj", "gamma")
        thread.join(timeout=2.0)
        assert failures == ["gamma"]
        # The holder can still release cleanly after the move.
        locks.release("obj", holder.token)

    def test_new_requests_redirected_after_move(self, locks):
        locks.mark_moved("obj", "gamma")
        with pytest.raises(LockMovedError) as excinfo:
            locks.acquire("obj", "alpha", "reader")
        assert excinfo.value.new_location == "gamma"

    def test_arrival_reopens_locking(self, locks):
        locks.mark_moved("obj", "gamma")
        locks.mark_arrived("obj")
        grant = locks.acquire("obj", "alpha", "reader")
        assert grant.kind == STAY


class TestRelease:
    def test_release_unknown_token(self, locks):
        grant = locks.acquire("obj", "alpha", "reader")
        with pytest.raises(LockError):
            locks.release("obj", "bogus-token")
        locks.release("obj", grant.token)

    def test_release_unknown_name(self, locks):
        with pytest.raises(LockError):
            locks.release("ghost", "token")

    def test_double_release(self, locks):
        grant = locks.acquire("obj", "alpha", "reader")
        locks.release("obj", grant.token)
        with pytest.raises(LockError):
            locks.release("obj", grant.token)

    def test_state_is_garbage_collected(self, locks):
        grant = locks.acquire("obj", "alpha", "reader")
        locks.release("obj", grant.token)
        assert locks.snapshot("obj") == {
            "stays": 0, "move": False, "queued": 0, "moved_to": None,
            "departing": False,
        }


class TestQueries:
    def test_holds_move_lock(self, locks):
        grant = locks.acquire("obj", "beta", "mover")
        assert locks.holds_move_lock("obj", grant.token)
        assert not locks.holds_move_lock("obj", "other")

    def test_has_activity(self, locks):
        assert not locks.has_activity("obj")
        grant = locks.acquire("obj", "alpha", "reader")
        assert locks.has_activity("obj")
        locks.release("obj", grant.token)
        assert not locks.has_activity("obj")

    def test_stats_count_grants(self, locks):
        locks.acquire("obj", "alpha", "r1")
        locks.acquire("obj2", "beta", "m1")
        assert locks.stats.stays_granted == 1
        assert locks.stats.moves_granted == 1

    def test_negative_timeout_rejected(self, locks):
        with pytest.raises(LockError):
            locks.acquire("obj", "alpha", "r", timeout_ms=-5)
