"""The per-namespace class cache (§4.2 cloning + caching)."""

import pytest

from repro.errors import ClassTransferError
from repro.rmi.classdesc import describe_class
from repro.runtime.classcache import ClassCache
from repro.bench.workloads import Counter, PrintServer


@pytest.fixture
def cache():
    return ClassCache("alpha")


class TestServing:
    def test_register_native_serves_descriptor(self, cache):
        desc = cache.register_native(Counter)
        assert cache.descriptor("Counter") == desc

    def test_unknown_class(self, cache):
        with pytest.raises(ClassTransferError):
            cache.descriptor("Ghost")

    def test_has_class(self, cache):
        assert not cache.has_class("Counter")
        cache.register_native(Counter)
        assert cache.has_class("Counter")

    def test_class_names_sorted(self, cache):
        cache.register_native(PrintServer)
        cache.register_native(Counter)
        assert cache.class_names() == ["Counter", "PrintServer"]


class TestLoading:
    def test_load_caches_clone_by_hash(self, cache):
        desc = describe_class(Counter)
        first = cache.load(desc)
        second = cache.load(desc)
        assert first is second
        assert cache.loads == 1
        assert cache.hits == 1

    def test_has_hash_after_load(self, cache):
        desc = describe_class(Counter)
        assert not cache.has_hash(desc.source_hash)
        cache.load(desc)
        assert cache.has_hash(desc.source_hash)

    def test_clone_by_hash(self, cache):
        desc = describe_class(Counter)
        loaded = cache.load(desc)
        assert cache.clone_by_hash(desc.source_hash) is loaded

    def test_clone_by_hash_missing(self, cache):
        with pytest.raises(ClassTransferError):
            cache.clone_by_hash("deadbeef")

    def test_disabled_cache_always_reloads(self):
        cache = ClassCache("alpha", enabled=False)
        desc = describe_class(Counter)
        first = cache.load(desc)
        second = cache.load(desc)
        assert first is not second
        assert cache.loads == 2
        assert not cache.has_hash(desc.source_hash)


class TestResolve:
    def test_resolve_native_directly(self, cache):
        cache.register_native(Counter)
        assert cache.resolve("Counter") is Counter

    def test_resolve_stored_descriptor_loads_clone(self, cache):
        cache.store(describe_class(Counter))
        cls = cache.resolve("Counter")
        assert cls is not Counter
        assert cls.__name__ == "Counter"

    def test_resolve_prefers_native_over_clone(self, cache):
        cache.store(describe_class(Counter))
        cache.load(describe_class(Counter))
        cache.register_native(Counter)
        assert cache.resolve("Counter") is Counter

    def test_resolve_unknown(self, cache):
        with pytest.raises(ClassTransferError):
            cache.resolve("Ghost")

    def test_resolve_reuses_clone_within_namespace(self, cache):
        cache.store(describe_class(Counter))
        assert cache.resolve("Counter") is cache.resolve("Counter")
