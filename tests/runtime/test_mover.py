"""Weak migration: state preservation, class shipping, locks, idempotency."""

import pytest

from repro.errors import LockError, ObjectPinnedError
from repro.bench.workloads import Counter, GeoDataFilterImpl


class StatefulServant:
    """Servant with custom (get/set)state to prove the hooks are honoured."""

    def __init__(self, value=0):
        self.value = value
        self.restored = False

    def __getstate__(self):
        return {"value": self.value}

    def __setstate__(self, state):
        self.value = state["value"]
        self.restored = True

    def get(self):
        return self.value

    def was_restored(self):
        return self.restored


class TestWeakMigration:
    def test_state_survives_the_move(self, pair):
        pair["alpha"].register("c", Counter(41))
        pair["alpha"].stub("c").increment()
        pair["alpha"].namespace.move("c", "beta")
        assert pair["beta"].stub("c", location="beta").get() == 42

    def test_object_leaves_the_source(self, pair):
        pair["alpha"].register("c", Counter())
        pair["alpha"].namespace.move("c", "beta")
        assert not pair["alpha"].namespace.store.contains("c")
        assert pair["beta"].namespace.store.contains("c")

    def test_move_to_self_is_noop(self, pair):
        pair["alpha"].register("c", Counter(5))
        assert pair["alpha"].namespace.move("c", "alpha") == "alpha"
        assert pair["alpha"].namespace.store.contains("c")

    def test_moved_instance_is_a_clone_instance(self, pair):
        pair["alpha"].register("c", Counter())
        pair["alpha"].namespace.move("c", "beta")
        moved = pair["beta"].namespace.store.get("c")
        assert type(moved).__module__.startswith("repro._mobile.beta.")

    def test_getstate_setstate_honoured(self, pair):
        pair["alpha"].register("s", StatefulServant(7))
        pair["alpha"].namespace.move("s", "beta")
        stub = pair["beta"].stub("s", location="beta")
        assert stub.get() == 7
        assert stub.was_restored() is True

    def test_rich_state_preserved(self, pair):
        geo = GeoDataFilterImpl(threshold=0.4)
        geo.ingest([0.1, 0.5, 0.9])
        geo.filter_data()
        pair["alpha"].register("geo", geo)
        pair["alpha"].namespace.move("geo", "beta")
        summary = pair["beta"].stub("geo", location="beta").process_data()
        assert summary["samples"] == 2

    def test_shared_flag_travels(self, pair):
        pair["alpha"].register("private", Counter(), shared=False)
        pair["alpha"].namespace.move("private", "beta")
        assert pair["beta"].namespace.store.is_shared("private") is False

    def test_pinned_object_refuses_to_move(self, pair):
        pair["alpha"].register("fixed", Counter(), pinned=True)
        with pytest.raises(ObjectPinnedError):
            pair["alpha"].namespace.move("fixed", "beta")

    def test_round_trip_home(self, pair):
        pair["alpha"].register("c", Counter(1))
        pair["alpha"].namespace.move("c", "beta")
        pair["beta"].namespace.move("c", "alpha")
        assert pair["alpha"].stub("c", location="alpha").get() == 1


class TestClassShipping:
    def test_first_move_ships_class_later_moves_do_not(self, trio):
        """§4.2's cache optimization, observed on the wire."""
        trio["alpha"].register("c1", Counter())
        trio["alpha"].register("c2", Counter())
        trio["alpha"].namespace.move("c1", "beta")
        first_transfer = [
            e for e in trio.trace.events() if e.kind == "OBJECT_TRANSFER"
        ]
        trio["alpha"].namespace.move("c2", "beta")
        second_transfer = [
            e for e in trio.trace.events() if e.kind == "OBJECT_TRANSFER"
        ][len(first_transfer):]
        assert first_transfer and second_transfer
        # Wire sizes tell the story: the second transfer omits the class.
        mover = trio["alpha"].namespace.mover
        assert mover.moves_out == 2

    def test_receiver_without_cache_pulls_class(self, make_cluster):
        cluster = make_cluster(["alpha", "beta"], class_cache=False)
        cluster["alpha"].register("c1", Counter())
        cluster["alpha"].register("c2", Counter(5))
        cluster["alpha"].namespace.move("c1", "beta")
        # The sender now assumes beta caches Counter — but beta's cache is
        # disabled, so the second move forces a CLASS_REQUEST back-pull.
        cluster["alpha"].namespace.move("c2", "beta")
        pulls = [e for e in cluster.trace.events() if e.kind == "CLASS_REQUEST"]
        assert any(not e.local for e in pulls)
        assert cluster["beta"].stub("c2", location="beta").get() == 5

    def test_always_ship_class_mode(self, make_cluster):
        cluster = make_cluster(["alpha", "beta"], always_ship_class=True)
        cluster["alpha"].register("c1", Counter())
        cluster["alpha"].register("c2", Counter())
        cluster["alpha"].namespace.move("c1", "beta")
        cluster["alpha"].namespace.move("c2", "beta")
        # No back-pulls needed: the class body rode along both times.
        pulls = [
            e for e in cluster.trace.events()
            if e.kind == "CLASS_REQUEST" and not e.local
        ]
        assert pulls == []


class TestLockEnforcement:
    def test_uncontended_move_needs_no_token(self, pair):
        pair["alpha"].register("c", Counter())
        assert pair["alpha"].namespace.move("c", "beta") == "beta"

    def test_contended_move_requires_token(self, pair):
        pair["alpha"].register("c", Counter())
        grant = pair["alpha"].namespace.lock("c", "alpha")  # a stay holder
        with pytest.raises(LockError):
            pair["beta"].namespace.move("c", "beta", origin_hint="alpha")
        pair["alpha"].namespace.unlock(grant)

    def test_move_with_proper_token(self, pair):
        pair["alpha"].register("c", Counter())
        grant = pair["beta"].namespace.lock("c", "beta", origin_hint="alpha")
        assert grant.kind == "move"
        moved_to = pair["beta"].namespace.move(
            "c", "beta", origin_hint="alpha", lock_token=grant.token
        )
        assert moved_to == "beta"
        pair["beta"].namespace.unlock(grant)


class TestIdempotency:
    def test_duplicate_transfer_is_ignored(self, pair):
        from repro.rmi.protocol import ObjectTransfer

        alpha_ns = pair["alpha"].namespace
        beta_ns = pair["beta"].namespace
        alpha_ns.register("c", Counter(3))
        record = alpha_ns.store.record("c")
        desc = alpha_ns.mover.descriptor_for(record.obj)
        transfer = ObjectTransfer(
            name="c",
            class_name=desc.class_name,
            state_blob=alpha_ns.mover.pack_state(record.obj),
            class_desc=desc,
            class_hash=desc.source_hash,
            origin="alpha",
            transfer_id="fixed-id",
        )
        assert beta_ns.mover.receive(transfer) == "ok"
        pair["beta"].stub("c", location="beta").increment()
        # The duplicate must not clobber the incremented state.
        assert beta_ns.mover.receive(transfer) == "ok"
        assert pair["beta"].stub("c", location="beta").get() == 4
