"""The MAGE registry: forwarding chains and path collapsing (§4.1)."""

import pytest

from repro.errors import ComponentNotFoundError
from repro.bench.workloads import Counter


def register_and_tour(cluster, hops):
    """Register a counter at the first node and move it along ``hops``."""
    first = cluster[hops[0]]
    first.register("wanderer", Counter())
    for src, dst in zip(hops, hops[1:]):
        cluster[src].namespace.move("wanderer", dst)
    return hops[-1]


class TestFind:
    def test_local_find(self, pair):
        pair["alpha"].register("c", Counter())
        assert pair["alpha"].find("c") == "alpha"

    def test_find_after_move(self, pair):
        register_and_tour(pair, ["alpha", "beta"])
        assert pair["alpha"].find("wanderer") == "beta"

    def test_find_with_origin_hint(self, trio):
        register_and_tour(trio, ["alpha", "beta"])
        # gamma knows nothing locally; the origin hint bootstraps the walk.
        assert trio["gamma"].find("wanderer", origin_hint="alpha") == "beta"

    def test_find_without_any_knowledge(self, trio):
        trio["alpha"].register("c", Counter())
        with pytest.raises(ComponentNotFoundError):
            trio["gamma"].find("c")

    def test_unverified_find_returns_hint(self, trio):
        final = register_and_tour(trio, ["alpha", "beta", "gamma"])
        alpha = trio["alpha"].namespace
        # alpha watched the first move only; its table says beta (stale).
        assert final == "gamma"
        assert alpha.registry.forwarding_hint("wanderer") == "beta"
        assert alpha.find("wanderer", verify=False) == "beta"

    def test_verified_find_walks_stale_chains(self, trio):
        register_and_tour(trio, ["alpha", "beta", "gamma"])
        assert trio["alpha"].find("wanderer", verify=True) == "gamma"


class TestPathCollapsing:
    def test_chain_collapses_after_find(self, quad):
        register_and_tour(quad, ["alpha", "beta", "gamma", "delta"])
        alpha = quad["alpha"].namespace
        beta = quad["beta"].namespace
        assert alpha.find("wanderer", verify=True) == "delta"
        # Both alpha and the intermediate hop now point straight at delta.
        assert alpha.registry.forwarding_hint("wanderer") == "delta"
        assert beta.registry.forwarding_hint("wanderer") == "delta"

    def test_second_find_is_cheaper(self, quad):
        register_and_tour(quad, ["alpha", "beta", "gamma", "delta"])
        alpha = quad["alpha"].namespace
        alpha.find("wanderer", verify=True)
        before = quad.trace.remote_message_count()
        alpha.find("wanderer", verify=True)
        second_cost = quad.trace.remote_message_count() - before
        assert second_cost == 2  # one direct FIND round trip

    def test_collapsing_disabled_keeps_long_chains(self, make_cluster):
        cluster = make_cluster(
            ["alpha", "beta", "gamma", "delta"], path_collapsing=False
        )
        register_and_tour(cluster, ["alpha", "beta", "gamma", "delta"])
        alpha = cluster["alpha"].namespace
        assert alpha.find("wanderer", verify=True) == "delta"
        # Without collapsing, alpha's table still names the first hop.
        assert alpha.registry.forwarding_hint("wanderer") == "beta"


class TestChainSafety:
    def test_cycle_detection(self, pair):
        alpha = pair["alpha"].namespace
        beta = pair["beta"].namespace
        # Manufacture a routing loop: alpha -> beta -> alpha.
        alpha.registry.note_location("phantom", "beta")
        beta.registry.note_location("phantom", "alpha")
        with pytest.raises(ComponentNotFoundError, match="cycle|cold"):
            alpha.find("phantom", verify=True)

    def test_chain_going_cold(self, trio):
        alpha = trio["alpha"].namespace
        beta = trio["beta"].namespace
        alpha.registry.note_location("phantom", "beta")
        beta.registry.note_location("phantom", "beta")  # beta points at itself
        with pytest.raises(ComponentNotFoundError):
            alpha.find("phantom", verify=True)

    def test_arrival_clears_staleness(self, pair):
        pair["alpha"].register("c", Counter())
        pair["alpha"].namespace.move("c", "beta")
        pair["beta"].namespace.move("c", "alpha")  # comes home
        assert pair["alpha"].find("c") == "alpha"
        assert pair["beta"].find("c", verify=True) == "alpha"
