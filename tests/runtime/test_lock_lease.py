"""Unacknowledged-grant leases: the residual lock-leak window (ROADMAP).

A grant replied within roughly one-way transit of its caller's deadline
expiry can be dropped by the abandoned waiter.  Server-side, such an
at-risk grant is *provisional*: unless confirmed within a short TTL the
lock manager auto-releases it, so an answered-nobody grant cannot pin
the lock forever.  Callers that did receive their grant confirm it with
one LOCK_CONFIRM exchange (performed automatically by ``MageServer``).
"""

import time

import pytest

from repro.cluster import Cluster
from repro.errors import LockError
from repro.net.deadline import Deadline
from repro.net.message import MessageKind
from repro.rmi.protocol import LockRequestPayload
from repro.runtime.locks import LockManager


def make_locks(**kwargs):
    kwargs.setdefault("at_risk_window_ms", 50.0)
    kwargs.setdefault("unacked_grant_ttl_ms", 120.0)
    return LockManager("host", **kwargs)


def wait_for(predicate, timeout_s=2.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestLockManagerLeases:
    def test_grant_near_deadline_expiry_is_provisional(self):
        locks = make_locks()
        grant = locks.acquire("obj", target="elsewhere", requester="r",
                              deadline=Deadline.after_ms(10))
        assert grant.provisional

    def test_grant_with_ample_budget_is_not_provisional(self):
        locks = make_locks()
        grant = locks.acquire("obj", target="elsewhere", requester="r",
                              deadline=Deadline.after_ms(60_000))
        assert not grant.provisional

    def test_timeout_ms_alone_never_makes_a_grant_provisional(self):
        """timeout_ms bounds a blocking local call — the caller is right
        here to receive the grant, so no lease is needed."""
        locks = make_locks()
        grant = locks.acquire("obj", target="elsewhere", requester="r",
                              timeout_ms=10)
        assert not grant.provisional

    def test_unconfirmed_provisional_grant_is_reaped(self):
        """The regression: an abandoned waiter's grant must not pin the
        lock — after the TTL the reaper releases it and a queued move
        request proceeds."""
        locks = make_locks()
        grant = locks.acquire("obj", target="elsewhere", requester="ghost",
                              deadline=Deadline.after_ms(10))
        assert grant.provisional
        # The ghost never confirms; the lease reaper frees the lock.
        second = locks.acquire("obj", target="elsewhere", requester="live",
                               timeout_ms=2_000)
        assert second.requester == "live"
        assert locks.stats.leases_reaped == 1
        locks.release("obj", second.token)

    def test_confirmed_grant_survives_the_ttl(self):
        locks = make_locks()
        grant = locks.acquire("obj", target="elsewhere", requester="r",
                              deadline=Deadline.after_ms(10))
        assert locks.confirm("obj", grant.token) is True
        time.sleep(locks.unacked_grant_ttl_ms / 1000.0 + 0.1)
        assert locks.holds_move_lock("obj", grant.token)
        assert locks.stats.leases_reaped == 0
        locks.release("obj", grant.token)

    def test_explicit_release_beats_the_reaper(self):
        locks = make_locks()
        grant = locks.acquire("obj", target="elsewhere", requester="r",
                              deadline=Deadline.after_ms(10))
        locks.release("obj", grant.token)  # normal unlock before the TTL
        time.sleep(locks.unacked_grant_ttl_ms / 1000.0 + 0.1)
        assert locks.stats.leases_reaped == 0  # nothing left to reap
        # The token is gone for good; reusing it is the usual error.
        with pytest.raises(LockError):
            locks.release("obj", grant.token)

    def test_reaped_stay_lease_frees_shared_state_too(self):
        locks = make_locks()
        grant = locks.acquire("obj", target="host", requester="ghost",
                              deadline=Deadline.after_ms(10))
        assert grant.kind == "stay" and grant.provisional
        assert wait_for(lambda: locks.snapshot("obj")["stays"] == 0)
        assert locks.stats.leases_reaped == 1

    def test_confirm_of_unknown_token_reports_not_held(self):
        locks = make_locks()
        assert locks.confirm("obj", "lock-never-issued") is False

    def test_late_confirm_after_reap_reports_lock_lost(self):
        """A confirm that loses the race against the reaper must say so:
        the lock may already be re-granted, so proceeding on the old
        grant would put two holders on one object."""
        locks = make_locks()
        grant = locks.acquire("obj", target="elsewhere", requester="slow",
                              deadline=Deadline.after_ms(10))
        assert wait_for(lambda: locks.stats.leases_reaped == 1)
        assert locks.confirm("obj", grant.token) is False
        # ...and a second requester now legitimately holds the lock.
        second = locks.acquire("obj", target="elsewhere", requester="fast")
        assert locks.confirm("obj", grant.token) is False  # still lost
        locks.release("obj", second.token)


class TestEndToEndLease:
    @pytest.fixture
    def cluster(self):
        with Cluster(["alpha", "beta"]) as cluster:
            yield cluster

    def test_server_lock_auto_confirms_provisional_grants(self, cluster):
        """The full path: a lock whose budget is nearly gone comes back
        provisional; ``MageServer.lock`` confirms it on the wire, so the
        grant outlives the TTL."""
        alpha, beta = cluster["alpha"], cluster["beta"]
        locks = beta.namespace.locks
        locks.at_risk_window_ms = 10_000.0  # every deadline grant is at risk
        locks.unacked_grant_ttl_ms = 120.0
        beta.register("obj", object())
        grant = alpha.namespace.lock("obj", target="alpha", origin_hint="beta",
                                     deadline=Deadline.after_ms(5_000))
        assert grant.provisional
        assert "LOCK_CONFIRM" in cluster.trace.kinds()
        time.sleep(locks.unacked_grant_ttl_ms / 1000.0 + 0.1)
        assert locks.holds_move_lock("obj", grant.token)
        alpha.namespace.unlock(grant)

    def test_raw_wire_grant_without_confirm_is_reaped(self, cluster):
        """A waiter that dies between grant and confirm: the reply
        answers nobody and the lease reaper frees the lock."""
        alpha, beta = cluster["alpha"], cluster["beta"]
        locks = beta.namespace.locks
        locks.at_risk_window_ms = 10_000.0
        locks.unacked_grant_ttl_ms = 120.0
        beta.register("obj", object())
        # Bypass MageServer.lock's confirm step: the raw exchange is what
        # an abandoned waiter's request looks like to the server.
        grant = cluster.transport.call(
            "alpha", "beta", MessageKind.LOCK_REQUEST,
            LockRequestPayload(name="obj", target="alpha", requester="alpha",
                               wait_ms=1_000),
            deadline=Deadline.after_ms(5_000),
        )
        assert grant.provisional
        assert wait_for(lambda: not locks.holds_move_lock("obj", grant.token))
        assert locks.stats.leases_reaped == 1

    def test_deadline_free_locks_never_lease_and_never_confirm(self, cluster):
        alpha, beta = cluster["alpha"], cluster["beta"]
        beta.register("obj", object())
        grant = alpha.namespace.lock("obj", target="alpha", origin_hint="beta")
        assert not grant.provisional
        assert "LOCK_CONFIRM" not in cluster.trace.kinds()
        alpha.namespace.unlock(grant)
