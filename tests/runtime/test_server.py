"""MageServer operations: registration, class mobility, instantiate, locks."""

import pytest

from repro.errors import (
    ClassTransferError,
    ComponentNotFoundError,
    ImmobileObjectError,
    NoSuchObjectError,
)
from repro.bench.workloads import Counter, PrintServer


class TestRegistration:
    def test_register_binds_rmi_name(self, pair):
        ref = pair["alpha"].register("c", Counter())
        assert ref.node_id == "alpha"
        assert pair["alpha"].namespace.rmi_registry.lookup("c") == ref

    def test_unregister_clears_both(self, pair):
        pair["alpha"].register("c", Counter())
        pair["alpha"].namespace.unregister("c")
        assert not pair["alpha"].namespace.store.contains("c")
        assert not pair["alpha"].namespace.rmi_registry.contains("c")

    def test_unregister_missing(self, pair):
        with pytest.raises(NoSuchObjectError):
            pair["alpha"].namespace.unregister("ghost")

    def test_is_shared_local_knowledge(self, pair):
        pair["alpha"].register("priv", Counter(), shared=False)
        assert pair["alpha"].namespace.is_shared("priv") is False

    def test_is_shared_remote_is_conservative(self, pair):
        pair["beta"].register("c", Counter(), shared=False)
        assert pair["alpha"].namespace.is_shared("c") is True


class TestClassMobility:
    def test_fetch_class_cold_and_warm(self, pair):
        pair["beta"].register_class(Counter)
        alpha_server = pair["alpha"].namespace.server
        cls = alpha_server.fetch_class("Counter", "beta")
        assert cls.__name__ == "Counter"
        before = pair.trace.remote_message_count()
        alpha_server.fetch_class("Counter", "beta")
        warm_cost = pair.trace.remote_message_count() - before
        assert warm_cost == 2  # one conditional round trip, no body

    def test_fetch_unknown_class(self, pair):
        with pytest.raises(ClassTransferError):
            pair["alpha"].namespace.server.fetch_class("Ghost", "beta")

    def test_push_class_probe_then_body(self, pair):
        pair["alpha"].register_class(Counter)
        server = pair["alpha"].namespace.server
        server.push_class("Counter", "beta")
        assert pair["beta"].namespace.classcache.has_class("Counter")
        before = pair.trace.remote_message_count()
        server.push_class("Counter", "beta")
        warm_cost = pair.trace.remote_message_count() - before
        assert warm_cost == 2  # probe answers "have it", no body push

    def test_fetch_local_class_costs_nothing(self, pair):
        pair["alpha"].register_class(Counter)
        before = pair.trace.remote_message_count()
        cls = pair["alpha"].namespace.server.fetch_class("Counter", "alpha")
        assert cls is Counter
        assert pair.trace.remote_message_count() == before


class TestInstantiate:
    def test_remote_instantiate_and_publish(self, pair):
        pair["alpha"].register_class(PrintServer)
        server = pair["alpha"].namespace.server
        server.push_class("PrintServer", "beta")
        ref = server.instantiate(
            "PrintServer", "ps1", "beta", args=("laserjet",)
        )
        assert ref.node_id == "beta"
        # Published in beta's RMI registry by the initiator's Naming step.
        stub = pair["alpha"].namespace.naming.lookup("mage://beta/ps1")
        assert stub.print_job("doc") == "laserjet:1:doc"

    def test_local_instantiate(self, pair):
        pair["alpha"].register_class(Counter)
        ref = pair["alpha"].namespace.server.instantiate(
            "Counter", "c-local", "alpha", args=(9,)
        )
        assert ref.node_id == "alpha"
        assert pair["alpha"].stub("c-local").get() == 9

    def test_instantiate_kwargs(self, pair):
        pair["alpha"].register_class(Counter)
        pair["alpha"].namespace.server.instantiate(
            "Counter", "c-kw", "alpha", kwargs={"start": 3}
        )
        assert pair["alpha"].stub("c-kw").get() == 3

    def test_instantiate_unknown_class_remote(self, pair):
        with pytest.raises(ClassTransferError):
            pair["alpha"].namespace.server.instantiate("Ghost", "g", "beta")

    def test_initiator_learns_location(self, pair):
        pair["alpha"].register_class(Counter)
        server = pair["alpha"].namespace.server
        server.push_class("Counter", "beta")
        server.instantiate("Counter", "c-remote", "beta")
        assert pair["alpha"].namespace.registry.forwarding_hint("c-remote") == "beta"

    def test_batched_instantiate_rides_one_round_trip(self, pair):
        """``batched=True`` collapses instantiate + publish into one
        call_many frame: 2 remote messages instead of 4."""
        pair["alpha"].register_class(PrintServer)
        server = pair["alpha"].namespace.server
        server.push_class("PrintServer", "beta")
        before = pair.trace.remote_message_count()
        ref = server.instantiate(
            "PrintServer", "ps-batched", "beta", args=("inkjet",), batched=True
        )
        assert pair.trace.remote_message_count() - before == 2
        assert ref.node_id == "beta"
        # The publish step still happened: the name resolves and invokes.
        stub = pair["alpha"].namespace.naming.lookup("mage://beta/ps-batched")
        assert stub.print_job("doc") == "inkjet:1:doc"
        assert (
            pair["alpha"].namespace.registry.forwarding_hint("ps-batched")
            == "beta"
        )

    def test_batched_and_unbatched_publish_identical_refs(self, pair):
        """The batched path predicts the ref for its REGISTRY_BIND step
        (it cannot wait for the INSTANTIATE reply inside one frame); this
        pins the prediction to what the unbatched path actually binds."""
        pair["alpha"].register_class(Counter)
        server = pair["alpha"].namespace.server
        server.push_class("Counter", "beta")
        server.instantiate("Counter", "c-plain", "beta")
        server.instantiate("Counter", "c-batch2", "beta", batched=True)
        plain = pair["beta"].namespace.rmi_registry.lookup("c-plain")
        batched = pair["beta"].namespace.rmi_registry.lookup("c-batch2")
        assert plain.node_id == batched.node_id
        assert plain.methods == batched.methods

    def test_batched_instantiate_failure_does_not_publish(self, pair):
        """A failed INSTANTIATE stops the batch before the REGISTRY_BIND
        step, so no dangling binding appears (matching batched=False)."""
        with pytest.raises(ClassTransferError):
            pair["alpha"].namespace.server.instantiate(
                "Ghost", "ghost-batched", "beta", batched=True
            )
        assert not pair["beta"].namespace.rmi_registry.contains("ghost-batched")

    def test_batched_instantiate_via_namespace_facade(self, pair):
        pair["alpha"].register_class(Counter)
        pair["alpha"].namespace.server.push_class("Counter", "beta")
        ref = pair["alpha"].namespace.instantiate(
            "Counter", "c-batch", "beta", args=(4,), batched=True
        )
        assert ref.node_id == "beta"
        assert pair["alpha"].stub("c-batch").get() == 4


class TestLockBracket:
    def test_lock_unlock_round_trip(self, pair):
        pair["alpha"].register("c", Counter())
        grant = pair["beta"].namespace.lock("c", "beta", origin_hint="alpha")
        assert grant.kind == "move"
        pair["beta"].namespace.unlock(grant)

    def test_lock_chases_moved_object(self, trio):
        trio["alpha"].register("c", Counter())
        trio["alpha"].namespace.move("c", "beta")
        trio["beta"].namespace.move("c", "gamma")
        # alpha's table is stale (says beta); the lock request must chase.
        grant = trio["alpha"].namespace.lock("c", "gamma")
        assert grant.location == "gamma"
        assert grant.kind == "stay"
        trio["alpha"].namespace.unlock(grant)

    def test_lock_on_missing_object(self, pair):
        # The find preceding the lock request is what fails.
        with pytest.raises(ComponentNotFoundError):
            pair["alpha"].namespace.lock("ghost", "alpha")


class TestMisc:
    def test_ping(self, pair):
        assert pair["alpha"].namespace.server.ping("beta") is True

    def test_query_load(self, pair):
        pair["beta"].set_load(150.0)
        assert pair["alpha"].namespace.query_load("beta") == 150.0

    def test_query_own_load_default(self, pair):
        assert pair["alpha"].namespace.query_load() == 0.0

    def test_stale_location_move_retries(self, trio):
        """A stale fast-find must not break a remote-initiated move."""
        trio["alpha"].register("c", Counter())
        trio["alpha"].namespace.move("c", "beta")
        # gamma learns (stale) location from origin, then beta moves it on.
        trio["gamma"].find("c", origin_hint="alpha")
        trio["beta"].namespace.move("c", "alpha")
        # gamma's table now stale (beta); the move must chase to alpha.
        final = trio["gamma"].namespace.move("c", "gamma", origin_hint="alpha")
        assert final == "gamma"
        assert trio["gamma"].stub("c", location="gamma").get() == 0


class TestRpcException:
    def test_immobile_object_error_fields(self, pair):
        error = ImmobileObjectError("c", "beta", "alpha")
        assert error.name == "c"
        assert error.expected == "beta"
        assert error.actual == "alpha"
