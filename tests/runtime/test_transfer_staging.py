"""Two-phase streamed migration: staging, commit atomicity, hedged writes.

The invariant under test everywhere here: **staging never leaks into the
store before COMMIT** — a partially streamed transfer is invisible, an
aborted one evaporates, and only a COMMIT materializes the object.
"""

import threading
import time

import pytest

from repro.bench.workloads import Counter
from repro.errors import MigrationError
from repro.net.deadline import Deadline
from repro.rmi.protocol import (
    ObjectTransfer,
    TransferAbort,
    TransferChunk,
    TransferCommit,
    TransferPrepare,
)


class BigState:
    """A servant whose marshalled state clears any streaming threshold."""

    def __init__(self, size=512 * 1024, fill=b"s"):
        self.blob = fill * size
        self.tag = "big"

    def nbytes(self):
        return len(self.blob)


def _streaming_cluster(make_cluster, nodes=("alpha", "beta", "gamma")):
    """A simulated cluster whose movers stream anything over 4 KiB."""
    return make_cluster(list(nodes), stream_threshold=4 * 1024,
                        chunk_bytes=16 * 1024)


def _staged_parts(mover, name="obj", transfer_id="xfer-test",
                  payload=b"p" * 1000, chunk_bytes=300, ttl_ms=30_000.0):
    """Hand-built PREPARE + CHUNK frames targeting ``mover`` directly."""
    obj = BigStateLike(payload)
    desc = mover.descriptor_for(obj)
    state_blob = mover.pack_state(obj)
    chunks = [
        TransferChunk(transfer_id=transfer_id, index=i,
                      data=state_blob[start:start + chunk_bytes])
        for i, start in enumerate(range(0, len(state_blob), chunk_bytes))
    ]
    prepare = TransferPrepare(
        name=name,
        class_name=desc.class_name,
        class_desc=desc,
        class_hash=desc.source_hash,
        origin="alpha",
        transfer_id=transfer_id,
        total_bytes=len(state_blob),
        chunk_count=len(chunks),
        ttl_ms=ttl_ms,
    )
    return prepare, chunks


class BigStateLike(Counter):
    """Counter subclass carrying a payload so its state has real bytes."""

    def __init__(self, payload=b""):
        super().__init__(0)
        self.payload = payload


class TestStreamedMove:
    def test_large_object_streams_and_survives(self, make_cluster):
        cluster = _streaming_cluster(make_cluster)
        cluster["alpha"].register("big", BigState(size=128 * 1024))
        assert cluster["alpha"].namespace.move("big", "beta") == "beta"
        assert not cluster["alpha"].namespace.store.contains("big")
        moved = cluster["beta"].namespace.store.get("big")
        assert moved.nbytes() == 128 * 1024
        assert moved.tag == "big"
        kinds = [e.kind for e in cluster.trace.events() if not e.local]
        assert "TRANSFER_PREPARE" in kinds
        assert "TRANSFER_COMMIT" in kinds
        # 128 KiB of raw state / 16 KiB chunks, plus marshalling overhead.
        assert kinds.count("TRANSFER_CHUNK") in (8, 9)
        assert "OBJECT_TRANSFER" not in kinds
        # Commit came strictly after every chunk.
        assert kinds.index("TRANSFER_COMMIT") > max(
            i for i, k in enumerate(kinds) if k == "TRANSFER_CHUNK"
        )
        # Nothing left staged on either side.
        assert cluster["beta"].namespace.mover.staging_count() == 0

    def test_small_object_keeps_the_single_frame_path(self, make_cluster):
        cluster = _streaming_cluster(make_cluster)
        cluster["alpha"].register("small", Counter(3))
        cluster["alpha"].namespace.move("small", "beta")
        kinds = [e.kind for e in cluster.trace.events() if not e.local]
        assert "OBJECT_TRANSFER" in kinds
        assert "TRANSFER_PREPARE" not in kinds
        assert "TRANSFER_CHUNK" not in kinds

    def test_streamed_round_trip_preserves_state(self, make_cluster):
        cluster = _streaming_cluster(make_cluster)
        cluster["alpha"].register("big", BigState(size=64 * 1024, fill=b"q"))
        cluster["alpha"].namespace.move("big", "beta")
        cluster["beta"].namespace.move("big", "gamma")
        obj = cluster["gamma"].namespace.store.get("big")
        assert obj.blob == b"q" * (64 * 1024)

    def test_streamed_move_respects_deadline(self, make_cluster):
        cluster = _streaming_cluster(make_cluster)
        cluster["alpha"].register("big", BigState(size=64 * 1024))
        with pytest.raises(Exception):
            cluster["alpha"].namespace.move(
                "big", "beta", deadline=Deadline.after_ms(0))
        # The failed move left the object exactly where it was.
        assert cluster["alpha"].namespace.store.contains("big")
        assert not cluster["beta"].namespace.store.contains("big")


class TestStagingInvariants:
    def test_staging_never_leaks_into_the_store_before_commit(self, pair):
        beta = pair["beta"].namespace
        prepare, chunks = _staged_parts(beta.mover)
        assert beta.mover.prepare(prepare) == "ok"
        for chunk in chunks:
            assert beta.mover.receive_chunk(chunk) == "ok"
            # The explicit invariant: chunks staged, store untouched.
            assert not beta.store.contains("obj")
        assert beta.mover.staging_count() == 1
        assert beta.mover.commit(
            TransferCommit(transfer_id=prepare.transfer_id, name="obj")
        ) == "ok"
        assert beta.store.contains("obj")
        assert beta.mover.staging_count() == 0
        assert beta.store.get("obj").payload == b"p" * 1000

    def test_prepare_is_idempotent(self, pair):
        beta = pair["beta"].namespace
        prepare, chunks = _staged_parts(beta.mover)
        beta.mover.prepare(prepare)
        beta.mover.receive_chunk(chunks[0])
        beta.mover.prepare(prepare)  # retransmission must not reset staging
        for chunk in chunks[1:]:
            beta.mover.receive_chunk(chunk)
        assert beta.mover.commit(
            TransferCommit(transfer_id=prepare.transfer_id, name="obj")
        ) == "ok"

    def test_retransmitted_commit_is_idempotent(self, pair):
        beta = pair["beta"].namespace
        prepare, chunks = _staged_parts(beta.mover)
        beta.mover.prepare(prepare)
        for chunk in chunks:
            beta.mover.receive_chunk(chunk)
        commit = TransferCommit(transfer_id=prepare.transfer_id, name="obj")
        assert beta.mover.commit(commit) == "ok"
        beta.store.get("obj").increment()  # mutate after the first apply
        assert beta.mover.commit(commit) == "ok"  # lost-ack retransmission
        assert beta.store.get("obj").get() == 1  # not clobbered
        assert beta.mover.moves_in == 1

    def test_commit_of_incomplete_staging_is_refused(self, pair):
        beta = pair["beta"].namespace
        prepare, chunks = _staged_parts(beta.mover)
        beta.mover.prepare(prepare)
        for chunk in chunks[:-1]:  # one chunk short
            beta.mover.receive_chunk(chunk)
        with pytest.raises(MigrationError):
            beta.mover.commit(
                TransferCommit(transfer_id=prepare.transfer_id, name="obj"))
        assert not beta.store.contains("obj")

    def test_commit_of_unknown_transfer_is_refused(self, pair):
        with pytest.raises(MigrationError):
            pair["beta"].namespace.mover.commit(
                TransferCommit(transfer_id="never-prepared", name="obj"))

    def test_chunk_without_prepare_is_refused(self, pair):
        with pytest.raises(MigrationError):
            pair["beta"].namespace.mover.receive_chunk(
                TransferChunk(transfer_id="never-prepared", index=0, data=b"x"))

    def test_duplicate_chunk_retransmission_is_ignored(self, pair):
        beta = pair["beta"].namespace
        prepare, chunks = _staged_parts(beta.mover)
        beta.mover.prepare(prepare)
        for chunk in chunks:
            beta.mover.receive_chunk(chunk)
        beta.mover.receive_chunk(chunks[0])  # lost-ack retransmission
        assert beta.mover.commit(  # byte totals still verify
            TransferCommit(transfer_id=prepare.transfer_id, name="obj")
        ) == "ok"

    def test_abort_discards_staging(self, pair):
        beta = pair["beta"].namespace
        prepare, chunks = _staged_parts(beta.mover)
        beta.mover.prepare(prepare)
        beta.mover.receive_chunk(chunks[0])
        assert beta.mover.abort(
            TransferAbort(transfer_id=prepare.transfer_id, reason="test")
        ) == "ok"
        assert beta.mover.staging_count() == 0
        assert not beta.store.contains("obj")
        # The stream is now dead: further chunks are refused.
        with pytest.raises(MigrationError):
            beta.mover.receive_chunk(chunks[1])

    def test_prepare_after_abort_cannot_resurrect_staging(self, pair):
        """Abort tombstones: on a congested node a PREPARE can dispatch
        *after* the ABORT that killed its transfer — it must be refused,
        not resurrect an orphan staging entry."""
        beta = pair["beta"].namespace
        prepare, chunks = _staged_parts(beta.mover)
        beta.mover.abort(TransferAbort(transfer_id=prepare.transfer_id,
                                       reason="loser"))
        with pytest.raises(MigrationError):
            beta.mover.prepare(prepare)
        with pytest.raises(MigrationError):
            beta.mover.receive_chunk(chunks[0])
        assert beta.mover.staging_count() == 0

    def test_abort_after_commit_is_refused(self, pair):
        beta = pair["beta"].namespace
        prepare, chunks = _staged_parts(beta.mover)
        beta.mover.prepare(prepare)
        for chunk in chunks:
            beta.mover.receive_chunk(chunk)
        beta.mover.commit(
            TransferCommit(transfer_id=prepare.transfer_id, name="obj"))
        with pytest.raises(MigrationError):
            beta.mover.abort(TransferAbort(transfer_id=prepare.transfer_id))
        assert beta.store.contains("obj")

    def test_abort_racing_an_inflight_commit_is_refused(self, pair):
        """An abort landing while a COMMIT is mid-apply (staging entry
        already claimed, object not yet in the seen-set) must wait out
        the apply and then be refused — answering "ok" from that gap
        would leave a committed copy the source believes was aborted."""
        beta = pair["beta"].namespace
        prepare, chunks = _staged_parts(beta.mover)
        beta.mover.prepare(prepare)
        for chunk in chunks:
            beta.mover.receive_chunk(chunk)
        real_unpack = beta.mover.unpack
        mid_apply = threading.Event()
        abort_done = threading.Event()

        def slow_unpack(cls, blob):
            mid_apply.set()
            # Hold the apply window open until the abort has provably
            # started (it must park on the reservation, not sneak by).
            time.sleep(0.1)
            return real_unpack(cls, blob)

        beta.mover.unpack = slow_unpack
        outcome = {}

        def commit():
            outcome["commit"] = beta.mover.commit(
                TransferCommit(transfer_id=prepare.transfer_id, name="obj"))

        def abort():
            mid_apply.wait(2.0)
            try:
                beta.mover.abort(TransferAbort(transfer_id=prepare.transfer_id))
                outcome["abort"] = "ok"
            except MigrationError:
                outcome["abort"] = "refused"
            abort_done.set()

        committer = threading.Thread(target=commit)
        aborter = threading.Thread(target=abort)
        committer.start()
        aborter.start()
        committer.join(5.0)
        abort_done.wait(5.0)
        assert outcome == {"commit": "ok", "abort": "refused"}
        assert beta.store.contains("obj")  # committed exactly once
        assert beta.mover.moves_in == 1

    def test_orphaned_staging_is_reaped_after_its_ttl(self, pair):
        beta = pair["beta"].namespace
        prepare, chunks = _staged_parts(beta.mover, ttl_ms=30.0)
        beta.mover.prepare(prepare)
        beta.mover.receive_chunk(chunks[0])
        assert beta.mover.staging_count() == 1
        time.sleep(0.05)
        assert beta.mover.reap_staging() == 1
        assert beta.mover.staging_count() == 0
        assert beta.mover.staging_reaped == 1
        # A commit arriving after the reap is refused, not half-applied.
        with pytest.raises(MigrationError):
            beta.mover.commit(
                TransferCommit(transfer_id=prepare.transfer_id, name="obj"))
        assert not beta.store.contains("obj")

    def test_fresh_staging_survives_the_reaper(self, pair):
        beta = pair["beta"].namespace
        prepare, _chunks = _staged_parts(beta.mover, ttl_ms=30_000.0)
        beta.mover.prepare(prepare)
        assert beta.mover.reap_staging() == 0
        assert beta.mover.staging_count() == 1


class TestReceiveDedupRace:
    def test_concurrent_retransmissions_apply_once(self, pair):
        """The PR-4 race fix: two in-flight retransmissions of one
        transfer id must converge on a single apply.  The id is reserved
        on entry, so the second thread waits out the first instead of
        racing it through the unpack/store window."""
        beta = pair["beta"].namespace
        alpha = pair["alpha"].namespace
        alpha.register("c", Counter(3))
        record = alpha.store.record("c")
        desc = alpha.mover.descriptor_for(record.obj)
        transfer = ObjectTransfer(
            name="c",
            class_name=desc.class_name,
            state_blob=alpha.mover.pack_state(record.obj),
            class_desc=desc,
            class_hash=desc.source_hash,
            origin="alpha",
            transfer_id="dup-id",
        )
        # Widen the race window: the first unpack blocks until the second
        # receive has provably entered and parked on the reservation.
        real_unpack = beta.mover.unpack
        entered = threading.Event()

        def slow_unpack(cls, blob):
            entered.wait(2.0)
            time.sleep(0.05)
            return real_unpack(cls, blob)

        beta.mover.unpack = slow_unpack
        results = []

        def receive():
            results.append(beta.mover.receive(transfer))

        first = threading.Thread(target=receive)
        second = threading.Thread(target=receive)
        first.start()
        time.sleep(0.02)  # let the first thread reach the unpack
        second.start()
        time.sleep(0.02)  # let the second thread park on the reservation
        entered.set()
        first.join(5.0)
        second.join(5.0)
        assert results == ["ok", "ok"]
        assert beta.mover.moves_in == 1  # applied exactly once

    def test_failed_apply_releases_the_reservation(self, pair):
        beta = pair["beta"].namespace
        alpha = pair["alpha"].namespace
        alpha.register("c", Counter(9))
        record = alpha.store.record("c")
        desc = alpha.mover.descriptor_for(record.obj)
        transfer = ObjectTransfer(
            name="c",
            class_name=desc.class_name,
            state_blob=alpha.mover.pack_state(record.obj),
            class_desc=desc,
            class_hash=desc.source_hash,
            origin="alpha",
            transfer_id="retry-id",
        )
        real_unpack = beta.mover.unpack
        calls = []

        def failing_once(cls, blob):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient unpack failure")
            return real_unpack(cls, blob)

        beta.mover.unpack = failing_once
        with pytest.raises(RuntimeError):
            beta.mover.receive(transfer)
        # The reservation was released: the retransmission executes afresh.
        assert beta.mover.receive(transfer) == "ok"
        assert beta.store.get("c").get() == 9


class TestHedgedWrites:
    def test_hedged_move_lands_exactly_once(self, make_cluster):
        cluster = _streaming_cluster(make_cluster)
        cluster["alpha"].register("big", BigState(size=64 * 1024))
        landed = cluster["alpha"].namespace.move(
            "big", "beta", hedge=True, alternates=("gamma",))
        assert landed in ("beta", "gamma")
        loser = "gamma" if landed == "beta" else "beta"
        assert not cluster["alpha"].namespace.store.contains("big")
        assert cluster[landed].namespace.store.contains("big")
        # The loser never materialized the object and holds no staging.
        assert not cluster[loser].namespace.store.contains("big")
        assert cluster[loser].namespace.mover.staging_count() == 0
        # Forwarding follows the winner.
        assert cluster["alpha"].namespace.find("big") == landed

    def test_remote_hedged_write_via_move_request(self, make_cluster):
        """An initiator that does not host the object hands the alternates
        to the hosting mover through the MOVE_REQUEST."""
        cluster = _streaming_cluster(make_cluster)
        cluster["alpha"].register("big", BigState(size=64 * 1024))
        landed = cluster["gamma"].namespace.move(
            "big", "beta", origin_hint="alpha", hedge=True,
            alternates=("gamma",))
        assert landed in ("beta", "gamma")
        assert cluster[landed].namespace.store.contains("big")
        assert not cluster["alpha"].namespace.store.contains("big")

    def test_hedged_write_with_one_dead_target_still_lands(self, make_cluster):
        cluster = _streaming_cluster(make_cluster)
        cluster["alpha"].register("big", BigState(size=64 * 1024))
        cluster.crash("beta")
        landed = cluster["alpha"].namespace.move(
            "big", "beta", hedge=True, alternates=("gamma",),
            deadline=Deadline.after_s(10))
        assert landed == "gamma"
        assert cluster["gamma"].namespace.store.contains("big")
        assert not cluster["alpha"].namespace.store.contains("big")

    def test_hedged_write_all_targets_dead_keeps_the_object(self, make_cluster):
        cluster = _streaming_cluster(make_cluster)
        cluster["alpha"].register("big", BigState(size=64 * 1024))
        cluster.crash("beta")
        cluster.crash("gamma")
        with pytest.raises(MigrationError):
            cluster["alpha"].namespace.move(
                "big", "beta", hedge=True, alternates=("gamma",),
                deadline=Deadline.after_s(5))
        # Transfer-then-evict held: the object never left.
        assert cluster["alpha"].namespace.store.contains("big")
        snap = cluster["alpha"].namespace.locks.snapshot("big")
        assert snap["departing"] is False  # grants resumed after the abort

    def test_small_objects_ignore_alternates(self, make_cluster):
        cluster = _streaming_cluster(make_cluster)
        cluster["alpha"].register("small", Counter(1))
        landed = cluster["alpha"].namespace.move(
            "small", "beta", hedge=True, alternates=("gamma",))
        assert landed == "beta"
        kinds = [e.kind for e in cluster.trace.events() if not e.local]
        assert "TRANSFER_PREPARE" not in kinds


class TestDepartureLocking:
    def test_lock_during_stream_fails_over_to_the_winner(self, make_cluster):
        """A lock request arriving while the object streams away must not
        be granted against the departing copy: it queues, then fails over
        to the new host once the commit lands."""
        from repro.errors import LockMovedError
        from repro.runtime.locks import LockManager

        locks = LockManager("alpha")
        locks.begin_departure("obj")
        results = []

        def request():
            try:
                results.append(locks.acquire("obj", "alpha", "r",
                                             timeout_ms=2_000))
            except LockMovedError as exc:
                results.append(exc.new_location)

        thread = threading.Thread(target=request)
        thread.start()
        time.sleep(0.05)
        assert results == []  # withheld while departing
        locks.mark_moved("obj", "beta")
        thread.join(2.0)
        assert results == ["beta"]

    def test_aborted_departure_resumes_granting(self):
        from repro.runtime.locks import LockManager

        locks = LockManager("alpha")
        locks.begin_departure("obj")
        results = []

        def request():
            results.append(locks.acquire("obj", "alpha", "r",
                                         timeout_ms=2_000))

        thread = threading.Thread(target=request)
        thread.start()
        time.sleep(0.05)
        assert results == []
        locks.abort_departure("obj")
        thread.join(2.0)
        assert len(results) == 1 and results[0].kind == "stay"
