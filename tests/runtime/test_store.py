"""The object store."""

import pytest

from repro.errors import NoSuchObjectError
from repro.runtime.store import ObjectStore
from repro.bench.workloads import Counter


@pytest.fixture
def store():
    return ObjectStore("alpha")


class TestStore:
    def test_add_get(self, store):
        counter = Counter(1)
        store.add("c", counter)
        assert store.get("c") is counter

    def test_get_missing(self, store):
        with pytest.raises(NoSuchObjectError):
            store.get("ghost")

    def test_remove_returns_object(self, store):
        counter = Counter()
        store.add("c", counter)
        assert store.remove("c") is counter
        assert not store.contains("c")

    def test_remove_missing(self, store):
        with pytest.raises(NoSuchObjectError):
            store.remove("ghost")

    def test_replace_tenant(self, store):
        store.add("c", Counter(1))
        replacement = Counter(2)
        store.add("c", replacement)
        assert store.get("c") is replacement

    def test_shared_flag(self, store):
        store.add("public", Counter(), shared=True)
        store.add("private", Counter(), shared=False)
        assert store.is_shared("public")
        assert not store.is_shared("private")

    def test_pinned_flag(self, store):
        store.add("fixed", Counter(), pinned=True)
        assert store.is_pinned("fixed")

    def test_names_sorted(self, store):
        store.add("zebra", Counter())
        store.add("apple", Counter())
        assert store.names() == ["apple", "zebra"]

    def test_len_and_iter(self, store):
        store.add("a", Counter())
        store.add("b", Counter())
        assert len(store) == 2
        assert {record.name for record in store} == {"a", "b"}

    def test_validates_names(self, store):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            store.add("bad name", Counter())
