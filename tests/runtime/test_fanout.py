"""Scatter-gather runtime operations: class fan-out, sweeps, parallel find.

These run over the simulated network, where futures complete eagerly —
the tests pin the *semantics* (results, message counts, failure handling);
the TCP overlap itself is exercised in tests/net/test_call_future.py and
measured in benchmarks/test_async_fanout.py.
"""

import pytest

from repro.bench.workloads import Counter, PrintServer
from repro.core.agents import Agent
from repro.errors import ClassTransferError, ComponentNotFoundError
from repro.net.message import MessageKind


class Tourist(Agent):
    """Module-level so its source ships cleanly through the class cache."""


class TestBatchedPushClass:
    def test_batched_push_is_one_round_trip_cold(self, pair):
        pair["alpha"].register_class(Counter)
        server = pair["alpha"].namespace.server
        before = pair.trace.remote_message_count()
        server.push_class("Counter", "beta", batched=True)
        assert pair.trace.remote_message_count() - before == 2  # BATCH + reply
        assert pair["beta"].namespace.classcache.has_class("Counter")

    def test_batched_push_is_one_round_trip_warm(self, pair):
        pair["alpha"].register_class(Counter)
        server = pair["alpha"].namespace.server
        server.push_class("Counter", "beta", batched=True)
        before = pair.trace.remote_message_count()
        server.push_class("Counter", "beta", batched=True)
        assert pair.trace.remote_message_count() - before == 2
        # The conditional push against a warm cache kept the existing clone.
        assert pair["beta"].namespace.classcache.has_class("Counter")

    def test_default_push_keeps_the_paper_sequence(self, pair):
        """Unbatched: probe + body on a cold cache (Figure 1c's REV shape)."""
        pair["alpha"].register_class(Counter)
        before = pair.trace.remote_message_count()
        pair["alpha"].namespace.server.push_class("Counter", "beta")
        assert pair.trace.remote_message_count() - before == 4

    def test_batched_class_is_instantiable_at_target(self, pair):
        pair["alpha"].register_class(Counter)
        pair["alpha"].namespace.server.push_class("Counter", "beta", batched=True)
        ref = pair["alpha"].namespace.instantiate("Counter", "c1", "beta")
        stub = pair["alpha"].stub("c1")
        assert ref.node_id == "beta"
        assert stub.increment() == 1


class TestPushClassMany:
    def test_fans_out_to_every_target(self, quad):
        quad["alpha"].register_class(PrintServer)
        server = quad["alpha"].namespace.server
        hashes = server.push_class_many("PrintServer", ["beta", "gamma", "delta"])
        expected = quad["alpha"].namespace.classcache.descriptor(
            "PrintServer"
        ).source_hash
        assert hashes == {"beta": expected, "gamma": expected, "delta": expected}
        for target in ("beta", "gamma", "delta"):
            assert quad[target].namespace.classcache.has_class("PrintServer")

    def test_costs_one_batched_round_trip_per_target(self, quad):
        quad["alpha"].register_class(Counter)
        before = quad.trace.remote_message_count()
        quad["alpha"].namespace.server.push_class_many(
            "Counter", ["beta", "gamma", "delta"]
        )
        assert quad.trace.remote_message_count() - before == 6  # 3 x (BATCH+reply)

    def test_dead_target_raises_after_gathering_all(self, quad):
        quad["alpha"].register_class(Counter)
        quad.crash("gamma")
        with pytest.raises(ClassTransferError, match="gamma"):
            quad["alpha"].namespace.server.push_class_many(
                "Counter", ["beta", "gamma", "delta"]
            )
        # The healthy targets still received the class.
        assert quad["beta"].namespace.classcache.has_class("Counter")
        assert quad["delta"].namespace.classcache.has_class("Counter")


class TestSweeps:
    def test_query_load_many_matches_individual_queries(self, trio):
        trio["alpha"].set_load(10.0)
        trio["beta"].set_load(50.0)
        trio["gamma"].set_load(90.0)
        server = trio["alpha"].namespace.server
        loads = server.query_load_many(["alpha", "beta", "gamma"])
        assert loads == {"alpha": 10.0, "beta": 50.0, "gamma": 90.0}

    def test_query_load_many_skip_unreachable(self, trio):
        trio["beta"].set_load(50.0)
        trio["gamma"].set_load(90.0)
        trio.crash("beta")
        server = trio["alpha"].namespace.server
        loads = server.query_load_many(
            ["alpha", "beta", "gamma"], skip_unreachable=True
        )
        assert set(loads) == {"alpha", "gamma"}

    def test_query_load_many_strict_raises(self, trio):
        trio.crash("beta")
        server = trio["alpha"].namespace.server
        with pytest.raises(Exception):
            server.query_load_many(["alpha", "beta", "gamma"])

    def test_ping_many_marks_dead_hosts(self, trio):
        trio.crash("gamma")
        server = trio["alpha"].namespace.server
        assert server.ping_many(["alpha", "beta", "gamma"]) == {
            "alpha": True, "beta": True, "gamma": False,
        }

    def test_scatter_returns_one_future_per_target(self, trio):
        futures = trio["alpha"].namespace.server.scatter(
            ["beta", "gamma"], MessageKind.PING
        )
        assert set(futures) == {"beta", "gamma"}
        assert all(f.result() == "pong" for f in futures.values())


class TestLocateAny:
    def test_probes_resolve_a_moved_component(self, quad):
        quad["alpha"].register("doc", Counter())
        quad["alpha"].move("doc", "gamma")
        # delta never heard of the component; parallel probes still find it.
        server = quad["delta"].namespace.server
        assert server.locate_any("doc", ["alpha", "beta", "gamma"]) == "gamma"
        # The winning answer was recorded for the next local find.
        assert quad["delta"].namespace.registry.forwarding_hint("doc") == "gamma"

    def test_candidates_parameter_on_find(self, quad):
        quad["beta"].register("svc", PrintServer())
        location = quad["delta"].find("svc", candidates=quad.node_ids())
        assert location == "beta"

    def test_all_cold_chains_raise(self, trio):
        server = trio["alpha"].namespace.server
        with pytest.raises(ComponentNotFoundError):
            server.locate_any("ghost", ["beta", "gamma"])

    def test_no_candidates_raises(self, trio):
        with pytest.raises(ComponentNotFoundError):
            trio["alpha"].namespace.server.locate_any("ghost", [])

    def test_dead_candidate_does_not_abort_the_probe(self, trio):
        trio["gamma"].register("obj", Counter())
        trio.crash("beta")
        server = trio["alpha"].namespace.server
        assert server.locate_any("obj", ["beta", "gamma"]) == "gamma"


class TestClassProbeOverlap:
    def test_probe_skips_body_when_target_learned_class_elsewhere(self, make_cluster):
        cluster = make_cluster(["alpha", "beta", "gamma"], probe_classes=True)
        cluster["alpha"].register_class(Counter)
        cluster["alpha"].register("c", Counter())
        # gamma's cache is warmed by an explicit class push — a path the
        # mover's own shipping history knows nothing about, so only the
        # probe can discover it.
        cluster["alpha"].namespace.server.push_class("Counter", "gamma")
        cluster["alpha"].move("c", "gamma")
        events = cluster.trace.filtered(
            kinds=["OBJECT_TRANSFER"], remote_only=True
        )
        assert len(events) == 1
        # The probe discovered gamma's warm cache, so the transfer shipped
        # no class body; gamma reconstructed from its cached clone without
        # any CLASS_REQUEST pull to the origin.
        pulls = cluster.trace.filtered(kinds=["CLASS_REQUEST"], remote_only=True)
        assert pulls == []
        stub = cluster["alpha"].stub("c")
        assert stub.increment() == 1

    def test_probe_miss_ships_the_body(self, make_cluster):
        cluster = make_cluster(["alpha", "beta"], probe_classes=True)
        cluster["alpha"].register("c", Counter())
        cluster["alpha"].move("c", "beta")
        assert cluster["beta"].namespace.store.contains("c")
        # One probe (miss) preceded the transfer.
        probes = cluster.trace.filtered(kinds=["CLASS_TRANSFER"], remote_only=True)
        assert len(probes) == 1

    def test_default_moves_send_no_probe(self, pair):
        pair["alpha"].register("c", Counter())
        pair["alpha"].move("c", "beta")
        probes = pair.trace.filtered(kinds=["CLASS_TRANSFER"], remote_only=True)
        assert probes == []

    def test_agent_hop_uses_the_probe(self, make_cluster):
        cluster = make_cluster(["alpha", "beta", "gamma"], probe_classes=True)
        cluster["alpha"].register_class(Tourist)
        cluster["alpha"].namespace.server.push_class("Tourist", "beta")
        cluster["alpha"].agents.launch(Tourist(), "tourist", ("beta",))
        cluster.quiesce()
        assert cluster["beta"].namespace.store.contains("tourist")
        # beta's cache was warm, so the hop carried no class body and beta
        # never pulled the class from the origin.
        pulls = cluster.trace.filtered(kinds=["CLASS_REQUEST"], remote_only=True)
        assert pulls == []
