"""Setup shim: lets `pip install -e .` work on environments without the
`wheel` package (offline boxes) via the legacy develop path."""
from setuptools import setup

setup()
