"""§3.3's printer-management scenario: CLE clients, a migrating server.

"Clients could fruitfully use CLE to invoke a print server component while
the job controller moved the print server components around the network in
response to printer availability."

A job controller reacts to printers jamming and recovering by migrating
the print-server component; clients never learn where it is — CLE finds it
per invocation (and, unlike Jini, it is the *same component*: the job
queue survives every move).

Run with::

    python examples/printer_management.py
"""

from repro import CLE, Cluster


class PrintServer:
    """A mobile print server: its queue travels with it."""

    def __init__(self):
        self.receipts = []

    def print_job(self, client, document):
        receipt = f"job#{len(self.receipts) + 1} {document!r} for {client}"
        self.receipts.append(receipt)
        return receipt

    def totals(self):
        return len(self.receipts)


class JobController:
    """Moves the print server toward whichever floor has a working printer."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.printer_ok = {}

    def printer_event(self, floor, ok):
        self.printer_ok[floor] = ok
        working = [f for f, good in sorted(self.printer_ok.items()) if good]
        if working:
            new_home = working[0]
            self.runtime.move("ps", new_home, origin_hint="controller")
            print(f"  controller: printer event on {floor} "
                  f"({'up' if ok else 'down'}) → server now at {new_home}")


def main():
    floors = ["floor1", "floor2", "floor3"]
    with Cluster(["controller"] + floors) as cluster:
        controller_node = cluster["controller"]
        controller_node.register("ps", PrintServer(), shared=True)
        controller = JobController(controller_node.namespace)

        # Each floor's client holds one CLE attribute, configured once.
        clients = {
            floor: CLE("ps", runtime=cluster[floor].namespace,
                       origin="controller")
            for floor in floors
        }

        controller.printer_event("floor2", ok=True)
        print("  floor1:", clients["floor1"].bind().print_job("floor1", "specs.pdf"))

        controller.printer_event("floor2", ok=False)
        controller.printer_event("floor3", ok=True)
        print("  floor1:", clients["floor1"].bind().print_job("floor1", "memo.txt"))
        print("  floor2:", clients["floor2"].bind().print_job("floor2", "plan.md"))

        controller.printer_event("floor1", ok=True)
        print("  floor3:", clients["floor3"].bind().print_job("floor3", "poster.svg"))

        # One component the whole time: the queue remembers every job.
        final = clients["floor1"]
        print(f"  queue length after all moves: {final.bind().totals()}")
        print(f"  server ended up at: {final.cloc}")


if __name__ == "__main__":
    main()
