"""Streamed, compressed, hedged migration of a large object.

Run with::

    python examples/streaming_move.py

A 4-node cluster over real TCP sockets with a 2 ms emulated link delay
and a 200 Mbit/s emulated link bandwidth — the regime where moving an
8 MB object actually costs something.  Three acts:

1. **Monolithic baseline** — the paper's single OBJECT_TRANSFER frame
   (codecs off, streaming off): the whole marshalled state serializes,
   crosses the link, and applies as one blocking unit.
2. **Streamed + compressed** — the same object with the PR-4 pipeline:
   TRANSFER_PREPARE reserves a staging slot, zlib-compressed
   TRANSFER_CHUNK frames pipeline over the pooled socket (windowed,
   zero-copy slices of one blob), TRANSFER_COMMIT atomically applies.
   Until that commit the receiver's store shows nothing — a partially
   streamed object is invisible by construction.
3. **Hedged write** — the preferred target is wedged (500 ms per
   message).  ``move(hedge=True, alternates=...)`` streams to the wedged
   *and* a healthy target speculatively, commits whichever finishes
   staging first, and aborts the loser before anything applied.  The
   move completes at healthy speed; the loser never materializes a copy.
"""

import threading
import time

from repro.cluster import Cluster
from repro.net.deadline import Deadline
from repro.net.tcpnet import TcpNetwork

NODE_IDS = ["archive", "lab", "field", "backup"]
WEDGED = "field"
STALL_S = 0.5
STATE_MB = 8


class SurveyData:
    """8 MB of structured survey readings — big, and compressible."""

    def __init__(self, nbytes=STATE_MB * 1024 * 1024):
        self.readings = b"depth:0042.17;" * (nbytes // 14)

    def nbytes(self):
        return len(self.readings)


def timed_move(cluster, name, src, dst, **kwargs):
    start = time.perf_counter()
    landed = cluster[src].namespace.move(name, dst, **kwargs)
    return landed, time.perf_counter() - start


def main():
    print(f"== 1. monolithic baseline ({STATE_MB} MB, one frame) ==")
    baseline_net = TcpNetwork(latency_ms=2.0, bandwidth_mbps=200.0,
                              codecs=(), server_workers=12)
    with Cluster(NODE_IDS, transport=baseline_net,
                 stream_threshold=1 << 30) as cluster:
        cluster["archive"].register("survey", SurveyData())
        _, took = timed_move(cluster, "survey", "archive", "lab")
        print(f"   archive -> lab: {took * 1000:7.1f} ms  "
              f"({STATE_MB / took:.0f} MB/s effective)")

    print(f"== 2. streamed + compressed (256 KiB chunks, window 8) ==")
    fast_net = TcpNetwork(latency_ms=2.0, bandwidth_mbps=200.0,
                          server_workers=12)  # codecs: all available
    with Cluster(NODE_IDS, transport=fast_net,
                 stream_threshold=256 * 1024) as cluster:
        cluster["archive"].register("survey", SurveyData())

        # Watch the staging invariant while the stream is in flight.
        observed = {"staged": 0, "leaked": 0}
        stop = threading.Event()

        def watch():
            lab = cluster["lab"].namespace
            while not stop.is_set():
                staged = lab.mover.staging_count()
                present = lab.store.contains("survey")
                observed["staged"] = max(observed["staged"], staged)
                if present and staged:
                    observed["leaked"] += 1
                time.sleep(0.001)

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        _, took = timed_move(cluster, "survey", "archive", "lab")
        stop.set()
        watcher.join(1.0)
        print(f"   archive -> lab: {took * 1000:7.1f} ms  "
              f"({STATE_MB / took:.0f} MB/s effective)")
        print(f"   receiver staged transfers mid-flight: "
              f"{observed['staged']}, store sightings before commit: "
              f"{observed['leaked']} (must be 0)")
        assert observed["leaked"] == 0

        print(f"== 3. hedged write (preferred target wedged "
              f"{STALL_S * 1000:.0f} ms/message) ==")
        inner = cluster[WEDGED].namespace.external.handle
        release = threading.Event()

        def wedged_dispatch(message):
            release.wait(STALL_S)
            return inner(message)

        fast_net.register(WEDGED, wedged_dispatch)

        plain_start = time.perf_counter()
        cluster["lab"].namespace.move("survey", WEDGED)
        plain = time.perf_counter() - plain_start
        print(f"   plain move -> wedged {WEDGED!r}:   {plain * 1000:7.1f} ms")
        cluster[WEDGED].namespace.move("survey", "lab")  # bring it back

        landed, hedged = timed_move(
            cluster, "survey", "lab", WEDGED,
            hedge=True, alternates=("backup",),
            deadline=Deadline.after_s(20),
        )
        print(f"   hedged move ({WEDGED!r} + 'backup'): "
              f"{hedged * 1000:7.1f} ms -> landed on {landed!r} "
              f"({plain / hedged:.1f}x faster)")
        assert landed == "backup"
        assert not cluster[WEDGED].namespace.store.contains("survey")
        release.set()
        print("   loser never materialized the object; staging aborted.")


if __name__ == "__main__":
    main()
