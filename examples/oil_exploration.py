"""§3.6's oil-exploration scenario, line for line.

An oil company's sensors generate "an enormous amount of data, which we
would like to filter in place, at the sensor".  The filter component is
instantiated at sensor1 with REV, moved to sensor2 with an MA when the
first sensor is exhausted, and finally brought back to the research lab
with COD to process the accumulated results — then the whole tour is
rewritten with one CombinedMA, the paper's punchline.

Run with::

    python examples/oil_exploration.py
"""

import random

from repro import COD, Cluster, Combined, FactoryMode, MAgent, REV


class GeoDataFilter:
    """The paper's GeoDataFilterImpl: gathers and filters geologic data."""

    def __init__(self, threshold=0.6):
        self.threshold = threshold
        self.filtered = []
        self.sites = []

    def gather(self, site, n_readings, seed):
        """Pull readings off the (co-located) sensor and filter in place."""
        rng = random.Random(seed)
        raw = [rng.random() for _ in range(n_readings)]
        kept = [r for r in raw if r >= self.threshold]
        self.filtered.extend(kept)
        self.sites.append(site)
        return len(kept)

    def process_data(self):
        """Reduce to a survey summary (run back at the lab)."""
        if not self.filtered:
            return {"samples": 0, "sites": self.sites}
        return {
            "samples": len(self.filtered),
            "mean": round(sum(self.filtered) / len(self.filtered), 4),
            "peak": round(max(self.filtered), 4),
            "sites": self.sites,
        }


def explicit_tour(cluster):
    """The paper's first version: three attributes, applied by hand."""
    lab = cluster["researchLab"].namespace
    cluster["researchLab"].register_class(GeoDataFilter)

    rev = REV("GeoDataFilter", "geoData", "sensor1",
              mode=FactoryMode.SINGLE_USE, runtime=lab)
    geo = rev.bind()
    kept = geo.gather("sensor1", 10_000, seed=1)
    print(f"  REV  → filtered at sensor1, kept {kept} readings in place")

    magent = MAgent("geoData", "sensor2", runtime=lab, origin="sensor1")
    geo = magent.bind()
    kept = geo.gather("sensor2", 10_000, seed=2)
    print(f"  MA   → moved to sensor2, kept {kept} more")

    cod = COD("geoData", runtime=lab, origin="sensor1")
    geo = cod.bind()
    print(f"  COD  → back at the lab: {geo.process_data()}")


def combined_tour(cluster):
    """The paper's rewrite: one CombinedMA drives the whole campaign.

    'This fragment is more compact and general than the code it replaces.
    It seamlessly handles the addition of new sensors.'
    """
    lab = cluster["researchLab"].namespace
    seed = REV("GeoDataFilter", "geoData2", "sensor1",
               mode=FactoryMode.SINGLE_USE, runtime=lab)
    seed.bind()

    sensors = ["sensor1", "sensor2", "sensor3"]  # sensor3 is new — no edits
    status = {s: "active" for s in sensors}

    def select_target(attr):
        for sensor in sensors:
            if status[sensor] == "active":
                return sensor
        return "researchLab"

    combined = Combined(
        "geoData2",
        {
            **{
                s: MAgent("geoData2", s, runtime=lab, origin="sensor1")
                for s in sensors
            },
            "researchLab": COD("geoData2", runtime=lab, origin="sensor1"),
        },
        chooser=select_target,
        runtime=lab,
    )

    for i, sensor in enumerate(sensors):
        geo = combined.bind()
        kept = geo.gather(sensor, 10_000, seed=10 + i)
        status[sensor] = "exhausted"
        print(f"  CombinedMA → {sensor}: kept {kept}")
    geo = combined.bind()
    print(f"  CombinedMA → researchLab: {geo.process_data()}")
    print(f"  tour: {' → '.join(combined.history)}")


def main():
    nodes = ["researchLab", "sensor1", "sensor2", "sensor3"]
    with Cluster(nodes) as cluster:
        print("explicit three-attribute version (§3.6):")
        explicit_tour(cluster)
        print("\nCombinedMA rewrite (§3.6):")
        combined_tour(cluster)
        print(f"\n{cluster.trace.remote_message_count()} remote messages, "
              f"{cluster.clock.now_ms():.1f} virtual ms")


if __name__ == "__main__":
    main()
