"""Cluster observability: watch a MAGE deployment move work around.

Runs a small synthetic "day" on a 4-node cluster — REV deployments,
load-driven migrations, an agent survey — and prints the per-namespace
metrics dashboard after each phase: objects hosted, traffic in/out,
invocations served, moves, locks.

Run with::

    python examples/cluster_dashboard.py
"""

from repro import Cluster, FactoryMode, LoadBalancing, REV
from repro.bench.tables import render_table
from repro.bench.workloads import ProbeAgent
from repro.runtime.metrics import METRICS_HEADER, collect_cluster


class Worker:
    """A unit of deployable work."""

    def __init__(self, job=""):
        self.job = job
        self.progress = 0

    def step(self):
        self.progress += 1
        return self.progress


def dashboard(cluster, phase):
    rows = [metrics.row() for metrics in collect_cluster(cluster)]
    print()
    print(render_table(METRICS_HEADER, rows, title=f"After: {phase}"))


def main():
    hosts = ["control", "h1", "h2", "h3"]
    with Cluster(hosts) as cluster:
        control = cluster["control"]
        control.register_class(Worker)

        # Phase 1: deploy three workers across the farm with REV.
        workers = []
        for i, host in enumerate(["h1", "h2", "h3"]):
            rev = REV("Worker", f"worker{i}", host,
                      mode=FactoryMode.SINGLE_USE,
                      ctor_args=(f"job-{i}",), runtime=control.namespace)
            stub = rev.bind()
            stub.step()
            workers.append((f"worker{i}", rev))
        dashboard(cluster, "REV deployment of 3 workers")

        # Phase 2: h2 gets pegged; its worker flees via a load policy.
        cluster["h2"].set_load(400.0)
        cluster["h1"].set_load(20.0)
        cluster["h3"].set_load(30.0)
        policy = LoadBalancing("worker1", candidates=["h1", "h3"],
                               threshold=100.0, runtime=control.namespace,
                               origin="h2")
        policy.bind().step()
        print(f"\n  worker1 migrated to {policy.cloc} "
              f"(h2 load 400 > threshold 100)")
        dashboard(cluster, "load-driven migration off h2")

        # Phase 3: an agent surveys every host's load.
        control.agents.launch(ProbeAgent(), "surveyor", ("h1", "h2", "h3"))
        cluster.quiesce()
        report = cluster["h3"].stub("surveyor", location="h3").report()
        print("\n  surveyor loads:", report["samples"])
        dashboard(cluster, "agent survey tour")

        total = cluster.trace.remote_message_count()
        print(f"\n  whole day: {total} remote messages, "
              f"{cluster.trace.remote_bytes()} bytes, "
              f"{cluster.clock.now_ms():.1f} virtual ms")


if __name__ == "__main__":
    main()
