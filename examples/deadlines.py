"""Deadlines, cancellation, and hedged chases over a lossy-feeling LAN.

Run with::

    python examples/deadlines.py

A 6-node cluster over real TCP sockets with a 2 ms emulated link delay,
one node wedged with a 400 ms stall (a brownout, not a crash: it answers,
late).  The controller then does what a §4.4 client does all day —
locates and locks a mobile object starting from *stale* knowledge that
points at the wedged node — three ways:

1. the sequential chase, which serializes behind the stall;
2. a hedged locate (``locate_any`` under one ``Deadline``): every
   registry probed in parallel, first verified answer wins, the wedged
   straggler is cancelled;
3. a hedged lock (``lock(hedge=True)``): speculative LOCK_REQUESTs to
   the last-known host and the origin, first grant wins.

Plus the fleet-wide view: a load sweep with one shared deadline, where
the wedged node simply misses the window instead of stalling the sweep.
"""

import threading
import time

from repro.cluster import Cluster, LoadBalancer
from repro.net.deadline import Deadline
from repro.net.tcpnet import TcpNetwork

NODE_IDS = [f"host{i}" for i in range(6)]
WEDGED = "host2"
STALL_S = 0.4


class SensorFeed:
    """A mobile component the controllers chase around the cluster."""

    def __init__(self) -> None:
        self.reads = 0

    def read(self) -> int:
        self.reads += 1
        return self.reads


def main():
    transport = TcpNetwork(latency_ms=2.0, io_timeout_s=10.0,
                           server_workers=12)
    with Cluster(NODE_IDS, transport=transport) as cluster:
        controller = cluster["host0"]

        # The object's history: born on host1, passed through the (soon
        # to be) wedged host2, now lives on host5.
        cluster["host1"].register("feed", SensorFeed(), shared=True)
        cluster["host1"].namespace.move("feed", WEDGED)
        cluster[WEDGED].namespace.move("feed", "host5")
        cluster["host1"].namespace.find("feed")  # collapse host1 -> host5

        # Wedge host2: every request it serves now stalls 400 ms.
        release = threading.Event()
        inner = cluster[WEDGED].namespace.external.handle

        def wedged_dispatch(message):
            release.wait(STALL_S)
            return inner(message)

        transport.register(WEDGED, wedged_dispatch)

        ns = controller.namespace

        # --- 1. the sequential chase pays the stall ---------------------
        ns.registry.note_location("feed", WEDGED)  # stale knowledge
        start = time.perf_counter()
        where = ns.find("feed", origin_hint="host1")
        seq_ms = (time.perf_counter() - start) * 1000
        print(f"sequential chase through {WEDGED}: found on {where} "
              f"in {seq_ms:.0f} ms (paid the stall)")

        # --- 2. hedged locate cancels the wedged straggler --------------
        ns.registry.note_location("feed", WEDGED)  # re-stale it
        start = time.perf_counter()
        where = ns.server.locate_any("feed", NODE_IDS, origin_hint="host1",
                                     deadline=Deadline.after_ms(2000))
        hedge_ms = (time.perf_counter() - start) * 1000
        print(f"hedged locate: found on {where} in {hedge_ms:.1f} ms "
              f"({seq_ms / max(hedge_ms, 0.001):.0f}x faster; wedged probe "
              "cancelled)")

        # --- 3. hedged lock: first grant wins ---------------------------
        ns.registry.note_location("feed", WEDGED)
        start = time.perf_counter()
        grant = ns.lock("feed", "host5", origin_hint="host1", hedge=True,
                        deadline=Deadline.after_ms(2000))
        lock_ms = (time.perf_counter() - start) * 1000
        print(f"hedged lock: {grant.kind} lock granted at {grant.location} "
              f"in {lock_ms:.1f} ms")
        stub = ns.stub("feed", location=grant.location)
        print(f"  read under lock -> {stub.read()}")
        ns.unlock(grant)

        # --- 4. one deadline for a whole sweep --------------------------
        for i, node_id in enumerate(NODE_IDS):
            cluster[node_id].set_load(10.0 * (i + 1))
        balancer = LoadBalancer(cluster, threshold=100.0,
                                probe_timeout_ms=150.0)
        start = time.perf_counter()
        loads = balancer.snapshot()
        sweep_ms = (time.perf_counter() - start) * 1000
        silent = sorted(n for n, v in loads.items() if v == float("inf"))
        print(f"load sweep under one 150 ms deadline: {sweep_ms:.0f} ms, "
              f"{len(loads)} hosts priced, silent-and-overloaded: {silent}")
        print(f"least loaded candidate: "
              f"{min((v, n) for n, v in loads.items())[1]}")

        release.set()
        print("deadline demo complete")


if __name__ == "__main__":
    main()
