"""GREV and mobile agents over a 5-node ring.

Two §3.3/§3.5 features on one topology:

* **GREV** moves a component "regardless of whether the component was
  initially local or remote and whether the target is local or remote" —
  here a coordinator that never hosts the component shuttles it between
  arbitrary pairs of nodes.
* A **mobile agent** then walks the whole ring asynchronously, sampling
  host load at each hop (network-aware routing, Sumatra-style).

Run with::

    python examples/grev_tour.py
"""

from repro import Agent, Cluster, GREV


class Payload:
    """The GREV-moved component: records every namespace it executes in."""

    def __init__(self):
        self.executed_at = []

    def run(self, where):
        self.executed_at.append(where)
        return f"computed at {where}"

    def history(self):
        return self.executed_at


class LoadSurveyor(Agent):
    """An agent that tours the ring and reports the loads it saw."""

    def __init__(self):
        super().__init__()
        self.readings = {}

    def on_arrival(self, ctx):
        super().on_arrival(ctx)
        self.readings[ctx.node_id] = ctx.query_load()

    def report(self):
        return dict(sorted(self.readings.items()))


def main():
    ring = [f"node{i}" for i in range(5)]
    with Cluster(ring) as cluster:
        # --- GREV: arbitrary-to-arbitrary moves, driven by a bystander ----
        cluster["node0"].register("payload", Payload())
        coordinator = cluster["node2"].namespace  # never hosts the payload

        for target in ("node3", "node1", "node4", "node2", "node0"):
            grev = GREV("payload", target, runtime=coordinator,
                        origin="node0")
            stub = grev.bind()
            print(" ", stub.run(target),
                  f"(coercion: {grev.last_outcome.action.value})")

        trail = cluster["node0"].stub("payload").history()
        print("  GREV trail:", " → ".join(trail))

        # --- Mobile agent: asynchronous multi-hop ring walk ---------------
        for i, node in enumerate(ring):
            cluster[node].set_load(10.0 * (i + 1))

        cluster["node0"].agents.launch(
            LoadSurveyor(), "surveyor", tuple(ring[1:]) + ("node0",)
        )
        cluster.quiesce()
        surveyor = cluster["node0"].stub("surveyor", location="node0")
        print("  agent visited:", " → ".join(surveyor.report()))
        print("  loads sampled:", surveyor.report())


if __name__ == "__main__":
    main()
