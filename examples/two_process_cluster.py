"""A real two-process MAGE cluster over cross-host TCP.

Run with::

    python examples/two_process_cluster.py

The parent process hosts ``hub`` on its own ``TcpNetwork``; it then
spawns a **separate Python process** (this same file, ``--child``) that
hosts ``worker`` on another transport.  The two share no in-process
state whatsoever — everything below crosses real sockets through the
endpoint layer:

1. **Seed-list join** — the child knows exactly one ``host:port`` (the
   hub's endpoint, passed on its command line).  Its JOIN carries its
   own endpoint; the hub records it in its address book and answers
   with the cluster roster.
2. **HELLO-negotiated wire** — the first connection in each direction
   opens with a HELLO exchange: protocol version, node id, codec
   advertisement.  No ``advertise_codecs`` registry call exists between
   the processes, yet large frames compress — negotiation happened on
   the wire.
3. **The paper's operations, cross-process** — a remote invocation, a
   stay/move lock served by the other process, and a large object
   *streamed* to the worker as TRANSFER_PREPARE / CHUNK / COMMIT.
4. **Heartbeat failure detection** — the parent kills the child, the
   heartbeat sweep misses it repeatedly, membership declares it dead,
   its forwarding hints and transport state are pruned, and the load
   balancer stops targeting it.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import time

from repro.cluster import Cluster, LoadBalancer, Node
from repro.net import Endpoint, TcpNetwork

STREAM_THRESHOLD = 64 * 1024
CHUNK_BYTES = 16 * 1024
STATE_KB = 512


class FieldData:
    """The migrating payload (dependency-free: its class ships by source)."""

    def __init__(self, blob):
        self.blob = blob

    def size(self):
        return len(self.blob)


class Greeter:
    """A servant the parent invokes across process boundaries."""

    def __init__(self, where):
        self.where = where
        self.calls = 0

    def greet(self, name):
        self.calls += 1
        return f"hello {name}, from {self.where} (call #{self.calls})"


def run_child(seed: str) -> None:
    """The worker process: join the seed, host servants, serve until EOF."""
    seed_id, _, seed_addr = seed.partition("@")
    net = TcpNetwork()
    worker = Node("worker", net,
                  stream_threshold=STREAM_THRESHOLD, chunk_bytes=CHUNK_BYTES)
    worker.set_load(5)
    worker.register("greeter", Greeter("the child process"))
    worker.join(seed_id, Endpoint.parse(seed_addr))
    print(f"[child ] worker up at {net.endpoint_of('worker')}, "
          f"joined via {seed}", flush=True)
    sys.stdin.read()  # serve until the parent closes our stdin / kills us
    worker.shutdown()
    net.shutdown()


def main() -> None:
    net = TcpNetwork()
    cluster = Cluster(["hub"], transport=net,
                      stream_threshold=STREAM_THRESHOLD,
                      chunk_bytes=CHUNK_BYTES)
    hub = cluster["hub"]
    hub.set_load(10)
    endpoint = net.endpoint_of("hub")
    print(f"[parent] hub listening at {endpoint}")

    env = dict(os.environ)
    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
    child = subprocess.Popen(
        [sys.executable, __file__, "--child", f"hub@{endpoint}"],
        stdin=subprocess.PIPE, env=env,
    )
    try:
        # Act 1: the join arrives (the child prints its own half).
        for _ in range(100):
            if "worker" in hub.membership.hosts():
                break
            time.sleep(0.1)
        assert hub.membership.hosts() == ["hub", "worker"], "join never arrived"
        print(f"[parent] membership: {hub.membership.hosts()}, "
              f"worker endpoint {net.endpoint_of('worker')}")

        # Act 2+3: invoke, lock, and stream a large object across.
        greeter = hub.stub("greeter", location="worker")
        print(f"[parent] invoke   : {greeter.greet('MAGE')!r}")

        grant = hub.namespace.lock("greeter", target="hub",
                                   origin_hint="worker", timeout_ms=10_000)
        print(f"[parent] lock     : {grant.kind} lock granted by "
              f"{grant.location!r}")
        hub.namespace.unlock(grant)

        blob = bytes(range(256)) * (STATE_KB * 4)  # STATE_KB KiB
        hub.register("fielddata", FieldData(blob))
        started = time.perf_counter()
        where = hub.move("fielddata", "worker")
        elapsed_ms = (time.perf_counter() - started) * 1e3
        size = hub.stub("fielddata", location="worker").size()
        print(f"[parent] move     : {size / 1024:.0f} KiB streamed to "
              f"{where!r} in {elapsed_ms:.1f} ms "
              f"(threshold {STREAM_THRESHOLD // 1024} KiB, "
              f"chunks {CHUNK_BYTES // 1024} KiB)")
        print(f"[parent] codecs   : hub->worker negotiated "
              f"{net.negotiated_codecs('hub', 'worker')} on the wire")

        # Act 4: kill the child; the heartbeat notices, balancing reacts.
        balancer = LoadBalancer(cluster, membership=hub.membership,
                                threshold=50)
        print(f"[parent] loads    : {balancer.snapshot()}")
        child.kill()
        child.wait(timeout=10)
        membership = hub.membership
        membership.heartbeat_timeout_ms = 500
        sweeps = 0
        while not membership.is_dead("worker"):
            membership.heartbeat_once()
            sweeps += 1
        print(f"[parent] failure  : worker declared dead after {sweeps} "
              f"heartbeat sweeps; hosts now {membership.hosts()}")
        print(f"[parent] balancer : post-failure sweep {balancer.snapshot()} "
              "(the corpse is never a target)")
        assert "worker" not in balancer.snapshot()
        print("[parent] done.")
    finally:
        if child.poll() is None:
            child.kill()
        cluster.shutdown()


if __name__ == "__main__":
    if len(sys.argv) > 2 and sys.argv[1] == "--child":
        run_child(sys.argv[2])
    else:
        main()
