"""Scatter-gather class distribution over the asynchronous invocation core.

Run with::

    python examples/async_fanout.py

An 8-node cluster over real TCP sockets with a 2 ms emulated link delay
(``TcpNetwork(latency_ms=...)``, the regime a real LAN imposes).  The
controller distributes a class to every node, instantiates a worker on
each, sweeps the cluster's load, and invokes all workers — every
multi-node step as scatter-gather over ``CallFuture``s, timed against the
equivalent sequential loop.
"""

import time

from repro.cluster import Cluster, LoadBalancer
from repro.net.tcpnet import TcpNetwork


class ShardWorker:
    """One shard of a partitioned computation."""

    def __init__(self, shard: int):
        self.shard = shard
        self.processed = 0

    def process(self, items: int) -> int:
        self.processed += items
        return self.shard

    def stats(self) -> tuple[int, int]:
        return (self.shard, self.processed)


def main():
    node_ids = [f"host{i}" for i in range(8)]
    transport = TcpNetwork(latency_ms=2.0, server_workers=16)
    with Cluster(node_ids, transport=transport) as cluster:
        controller = cluster["host0"]
        controller.register_class(ShardWorker)

        # --- distribute the class: one overlapped batched push per node ---
        start = time.perf_counter()
        hashes = cluster.push_class_everywhere("ShardWorker")
        fanout_ms = (time.perf_counter() - start) * 1000
        print(f"class pushed to {len(hashes)} nodes in {fanout_ms:.1f} ms "
              "(sequential would pay one round trip per node)")

        # --- instantiate one shard per node ------------------------------
        for i, node_id in enumerate(node_ids):
            controller.namespace.instantiate(
                "ShardWorker", f"shard{i}", node_id, args=(i,), batched=True
            )

        # --- overlapped invocations via stub.futures ----------------------
        stubs = [controller.stub(f"shard{i}", location=node_ids[i])
                 for i in range(8)]
        start = time.perf_counter()
        futures = [stub.futures.process(100) for stub in stubs]
        shards = sorted(f.result() for f in futures)
        parallel_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        for stub in stubs:
            stub.process(100)
        sequential_ms = (time.perf_counter() - start) * 1000
        print(f"8 invocations: {sequential_ms:.1f} ms sequential vs "
              f"{parallel_ms:.1f} ms overlapped "
              f"({sequential_ms / parallel_ms:.1f}x)")
        assert shards == list(range(8))

        # --- one parallel sweep prices a balancing decision ---------------
        for i, node_id in enumerate(node_ids):
            cluster[node_id].set_load(25.0 * i)
        start = time.perf_counter()
        loads = cluster.query_all_loads()
        sweep_ms = (time.perf_counter() - start) * 1000
        balancer = LoadBalancer(cluster, threshold=100.0)
        print(f"load sweep of {len(loads)} hosts in {sweep_ms:.1f} ms; "
              f"overloaded: {balancer.overloaded(loads)}, "
              f"coolest: {balancer.least_loaded(loads)}")

        # move the hottest host's shard somewhere cooler
        new_home = balancer.rebalance("shard7", src="host0")
        print(f"rebalanced shard7: host7 -> {new_home}")

        total = sum(stub.stats()[1] for stub in stubs[:7])
        print(f"scatter-gather fanout done; {total} items processed on "
              "the untouched shards")


if __name__ == "__main__":
    main()
