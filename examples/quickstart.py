"""Quickstart: a 3-node MAGE cluster and the basic mobility attributes.

Run with::

    python examples/quickstart.py

Shows the core loop of the paper: register a component, control where it
executes with REV / CLE / COD attributes, and watch the runtime move it.
"""

from repro import CLE, COD, Cluster, FactoryMode, REV


class Greeter:
    """A trivially mobile component: one field, a few methods."""

    def __init__(self, greeting="hello"):
        self.greeting = greeting
        self.calls = 0

    def greet(self, whom):
        self.calls += 1
        return f"{self.greeting}, {whom}!"

    def call_count(self):
        return self.calls


def main():
    with Cluster(["laptop", "server", "edge"]) as cluster:
        laptop = cluster["laptop"]
        laptop.register_class(Greeter)

        # --- REV: push the class to the server, instantiate it there -----
        # SINGLE_USE: the first bind creates the object, later binds follow it.
        rev = REV("Greeter", "greeter", "server",
                  mode=FactoryMode.SINGLE_USE,
                  ctor_args=("hej",), runtime=laptop.namespace)
        greeter = rev.bind()
        print("REV   :", greeter.greet("world"), "→ runs on", greeter.ref.node_id)

        # --- CLE: invoke wherever the component currently lives ----------
        cle = CLE("greeter", runtime=cluster["edge"].namespace,
                  origin="server")
        print("CLE   :", cle.bind().greet("edge"), "→ found at", cle.cloc)

        # Someone moves the component; CLE follows without reconfiguration.
        cluster["server"].namespace.move("greeter", "edge")
        print("CLE   :", cle.bind().greet("edge again"), "→ found at", cle.cloc)

        # --- COD: bring the component home and keep using it -------------
        cod = COD("greeter", runtime=laptop.namespace, origin="server")
        greeter = cod.bind()
        print("COD   :", greeter.greet("laptop"), "→ now on",
              laptop.find("greeter"))
        print("state :", greeter.call_count(), "calls survived every move")

        print("wire  :", cluster.trace.remote_message_count(),
              "remote messages,",
              f"{cluster.clock.now_ms():.1f} virtual ms")


if __name__ == "__main__":
    main()
