"""§3.1's opening example: a migration policy based on load.

The paper's very first mobility attribute::

    public Remote bind() {
        if ( cloc.getLoad() > 100 ) {
            target = selectNewHost();
            cachedStub = send(target);
            return cachedStub;
        }
    }

Here a service component flees overloaded hosts: every bind checks the
current host's load and, past the threshold, migrates the component to the
least-loaded candidate before invoking.

Run with::

    python examples/load_balancing.py
"""

from repro import Cluster, LoadBalancing


class StatService:
    """A tiny stateful service whose history proves it survived each move."""

    def __init__(self):
        self.handled = 0

    def handle(self, request):
        self.handled += 1
        return f"request {request!r} handled ({self.handled} total)"

    def total(self):
        return self.handled


def main():
    hosts = ["h1", "h2", "h3"]
    with Cluster(hosts) as cluster:
        cluster["h1"].register("svc", StatService())

        policy = LoadBalancing(
            "svc", candidates=hosts, threshold=100.0,
            runtime=cluster["h1"].namespace,
        )

        # A synthetic day of shifting load, as §1 describes: "a host whose
        # CPU was pegged may become idle".
        load_timeline = [
            {"h1": 20, "h2": 10, "h3": 5},     # calm: stay on h1
            {"h1": 180, "h2": 30, "h3": 90},   # h1 pegged: flee to h2
            {"h1": 40, "h2": 250, "h3": 15},   # h2 pegged: flee to h3
            {"h1": 10, "h2": 20, "h3": 60},    # calm again: stay on h3
        ]

        for tick, loads in enumerate(load_timeline):
            for host, load in loads.items():
                cluster[host].set_load(load)
            service = policy.bind()
            print(f"  tick {tick}: loads={loads} → svc on {policy.cloc:3}:",
                  service.handle(f"req-{tick}"))

        print(f"\n  migrations: {policy.migrations}")
        print(f"  all {policy.bind().total()} requests handled by one "
              "component, state intact")


if __name__ == "__main__":
    main()
